// The cluster coordinator: one node that owns a pool of shard
// connections and answers the full wire-protocol surface by
// scatter-gathering over them. To a client a coordinator *is* a server —
// same frames, same replies — which is what lets `seqdl query --connect`
// point at either without knowing which it got.
//
// Placement: the EDB is hash-partitioned across the shards by a content
// hash of each fact's first-column value — see partitioner.h — so an
// append or
// retract batch is split and each piece routed to the shard owning it
// (broadcast relations go everywhere). Queries are classified by the
// static shard-locality pass (analysis/locality.h):
//
//   * distribution-transparent: every shard runs the unmodified program
//     over its partition, in parallel; the coordinator parses the
//     rendered per-shard answers into its own Universe, unions them
//     (set semantics dedupe overlap), and renders the merged instance —
//     byte-identical to a single-node run over the whole EDB.
//   * residual: the program joins or negates across shards, so the
//     per-shard union would be wrong. The coordinator instead gathers
//     the program's EDB relations from every shard (a generated
//     identity-rule "dump" program, so the shards need no new message
//     type) and finishes the evaluation itself on the gathered facts —
//     slower, but always correct.
//
// Failure semantics: shard calls are bounded by the client deadlines in
// CoordinatorOptions. A shard that is unreachable, hangs up mid-frame, or
// misses a deadline fails the whole request with a structured
// kUnavailable / kDeadlineExceeded naming the shard ("shard
// 127.0.0.1:4001: ..."); the connection is dropped and transparently
// re-established on the next request, so a restarted shard heals without
// coordinator intervention. Application errors (parse errors, unknown
// output relation, admission rejections) propagate unwrapped, exactly as
// a single server would report them.
//
// The coordinator tracks each shard's last-seen epoch; the vector of
// epochs acts as the cluster epoch. Run results are cached keyed by
// (program text, output relation) and answered without any shard traffic
// while the epoch vector is unchanged — appends/retractions through the
// coordinator invalidate it naturally. Writes that bypass the
// coordinator (a client appending to a shard directly) are invisible to
// this cache; route all writes through the coordinator.
//
// Thread-safety: all public methods are safe to call concurrently; each
// shard connection is serialized by its own mutex (the wire protocol is
// one-outstanding-request), so N concurrent coordinator requests
// interleave at shard granularity.
#ifndef SEQDL_CLUSTER_COORDINATOR_H_
#define SEQDL_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/cluster/partitioner.h"
#include "src/engine/engine.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/term/universe.h"

namespace seqdl {

struct ShardAddress {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parses "host:port,host:port,..." (the `seqdl coordinate --shards=`
/// syntax). Hosts are IPv4 dotted quads or "localhost"; at least one
/// shard is required.
Result<std::vector<ShardAddress>> ParseShardList(std::string_view spec);

struct CoordinatorOptions {
  /// Deadline for establishing a shard connection; 0 blocks forever.
  uint32_t connect_timeout_ms = 2000;
  /// Deadline for each shard round trip; 0 blocks forever. Runs can
  /// legitimately take long — set this generously or leave it off and
  /// rely on connect_timeout_ms to catch dead shards.
  uint32_t io_timeout_ms = 0;
  size_t max_frame_bytes = protocol::kDefaultMaxFrameBytes;
  /// Pinned/broadcast relation overrides, shared by the partitioner and
  /// the locality analysis. Programs touching a *pinned* relation are
  /// always evaluated residually — pinning breaks the co-location
  /// guarantees the transparent path depends on.
  PartitionerOptions partition;
  /// Cached (program, output_rel) results at the coordinator; 0 disables
  /// (the differential harness runs with 0).
  size_t result_cache_entries = 64;
  /// Budgets for coordinator-side residual evaluation.
  RunOptions residual_run;
};

class Coordinator {
 public:
  /// The universe is the coordinator's symbol context (used to parse
  /// requests, merge shard answers, and evaluate residual programs); it
  /// must outlive the coordinator.
  Coordinator(Universe& u, std::vector<ShardAddress> shards,
              CoordinatorOptions opts = {});

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const Partitioner& partitioner() const { return partitioner_; }

  /// Broadcasts the compile to every shard (warming their program
  /// caches) and returns the first shard's reply with the coordinator's
  /// shard-locality findings (SD2xx) appended to the diagnostics.
  Result<protocol::CompileReply> Compile(const protocol::CompileRequest& req);

  /// Scatter-gather evaluation; see the file comment for the
  /// transparent/residual split. `cancel` bounds the residual local
  /// evaluation (shard-side runs are bounded by their own servers).
  Result<protocol::RunReply> Run(const protocol::RunRequest& req,
                                 const std::function<bool()>& cancel = {});

  /// Splits the batch by the partitioner and routes each piece to its
  /// owning shard (broadcast facts to every shard, counted once).
  Result<protocol::AppendReply> Append(const protocol::AppendRequest& req);
  Result<protocol::RetractReply> Retract(const protocol::RetractRequest& req);

  /// Aggregated cluster info: sums of the per-shard epochs, segments,
  /// facts, and durability counters.
  Result<protocol::DbInfo> Info();
  Result<protocol::CompactReply> Compact();

  /// Summed shard cache counters; `rendered` concatenates the per-shard
  /// statistics under "-- shard host:port --" headers.
  Result<protocol::StatsReply> Stats();

  /// Best-effort shutdown request to every shard (used by `seqdl
  /// coordinate` when a client asks the *cluster* to shut down). Returns
  /// the first failure, after trying all shards.
  Status ShutdownShards();

 private:
  struct Shard {
    ShardAddress addr;
    std::mutex mu;  ///< serializes the connection (one outstanding request)
    std::optional<Client> client;  ///< connected + handshaken lazily
  };

  struct TrackedEpoch {
    bool known = false;
    uint64_t epoch = 0;
  };

  struct CachedResult {
    std::vector<uint64_t> epochs;  ///< shard epochs the entry is valid at
    protocol::RunReply reply;
    std::list<std::string>::iterator lru;
  };

  /// Runs `fn` against shard `i`'s connection (connecting and
  /// handshaking first if needed). Transport and deadline failures drop
  /// the connection and come back as kUnavailable/kDeadlineExceeded
  /// naming the shard; application errors pass through unwrapped.
  template <typename T>
  Result<T> CallShard(size_t i,
                      const std::function<Result<T>(Client&)>& fn);

  /// CallShard on every shard concurrently (shard 0 on the caller's
  /// thread); results in shard order.
  template <typename T>
  std::vector<Result<T>> Scatter(
      const std::function<Result<T>(Client&, size_t)>& fn);

  /// First error in a scatter result, if any.
  template <typename T>
  Status FirstError(const std::vector<Result<T>>& results) const;

  ClientOptions MakeClientOptions() const;
  Status NameShardError(size_t i, const Status& st) const;
  void UpdateEpoch(size_t i, uint64_t epoch);
  std::vector<TrackedEpoch> SnapshotEpochs() const;

  /// Both run paths report the per-shard epochs their answer was pinned
  /// to via `pinned_epochs` (left shorter than num_shards() when no
  /// shard was contacted), which stamps the result-cache entry.
  Result<protocol::RunReply> RunTransparent(
      const protocol::RunRequest& req, std::vector<uint64_t>* pinned_epochs);
  Result<protocol::RunReply> RunResidual(const protocol::RunRequest& req,
                                         Program program,
                                         const std::function<bool()>& cancel,
                                         std::vector<uint64_t>* pinned_epochs);
  Result<std::string> Render(const Instance& derived,
                             const std::string& output_rel) const;

  void CacheStore(const std::string& key, std::vector<uint64_t> epochs,
                  const protocol::RunReply& reply);
  std::optional<protocol::RunReply> CacheLookup(const std::string& key);

  Universe* u_;
  CoordinatorOptions opts_;
  Partitioner partitioner_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex epoch_mu_;
  std::vector<TrackedEpoch> epochs_;

  std::mutex cache_mu_;
  std::list<std::string> lru_;  ///< most recent first
  std::unordered_map<std::string, CachedResult> cache_;
};

}  // namespace seqdl

#endif  // SEQDL_CLUSTER_COORDINATOR_H_
