#include "src/cluster/partitioner.h"

namespace seqdl {

Partitioner::Partitioner(uint32_t num_shards, PartitionerOptions opts)
    : num_shards_(num_shards == 0 ? 1 : num_shards), opts_(std::move(opts)) {}

uint64_t Partitioner::HashKey(std::string_view key) {
  // FNV-1a 64: standard offset basis and prime.
  uint64_t h = 14695981039346656037ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (unsigned char c : key) {
    h = (h ^ c) * kPrime;
  }
  return h;
}

uint32_t Partitioner::ShardOf(const Universe& u, RelId rel,
                              const Tuple& t) const {
  const std::string& name = u.RelName(rel);
  if (opts_.broadcast.count(name) != 0) return 0;
  auto pin = opts_.pinned.find(name);
  if (pin != opts_.pinned.end()) return pin->second % num_shards_;
  // Keyed facts route by value alone so that joins keyed on the
  // partition column are co-located across relations.
  std::string key = t.empty() ? name : u.FormatPath(t[0]);
  return static_cast<uint32_t>(HashKey(key) % num_shards_);
}

std::vector<Instance> Partitioner::Split(const Universe& u,
                                         const Instance& in) const {
  std::vector<Instance> parts(num_shards_);
  for (RelId rel : in.Relations()) {
    if (IsBroadcast(u, rel)) {
      for (const Tuple& t : in.Tuples(rel)) {
        for (Instance& part : parts) part.Add(rel, t);
      }
      continue;
    }
    for (const Tuple& t : in.Tuples(rel)) {
      parts[ShardOf(u, rel, t)].Add(rel, t);
    }
  }
  return parts;
}

}  // namespace seqdl
