#include "src/cluster/coordinator.h"

#include <algorithm>
#include <set>
#include <thread>
#include <utility>

#include "src/analysis/locality.h"
#include "src/engine/database.h"
#include "src/syntax/ast.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"

namespace seqdl {

namespace {

/// The client layer's transport failures are distinguishable from
/// server-side application errors only by message (the wire carries raw
/// status codes, and e.g. kNotFound is both "cannot connect" and a
/// server's "no such relation"). These are the frame/socket layer's
/// fixed message stems.
bool LooksLikeTransportFailure(const Status& st) {
  if (st.code() == StatusCode::kDeadlineExceeded) return true;
  const std::string& m = st.message();
  auto has = [&m](const char* stem) {
    return m.find(stem) != std::string::npos;
  };
  return has("cannot connect") || has("send failed") || has("recv failed") ||
         has("connection closed") || has("truncated frame") ||
         has("oversized frame") || has("client is closed");
}

protocol::WireDiagnostic ToWire(const Diagnostic& d) {
  protocol::WireDiagnostic w;
  w.severity = static_cast<uint8_t>(d.severity);
  w.code = d.code;
  w.line = static_cast<uint32_t>(d.span.line);
  w.col = static_cast<uint32_t>(d.span.col);
  w.end_line = static_cast<uint32_t>(d.span.end_line);
  w.end_col = static_cast<uint32_t>(d.span.end_col);
  w.message = d.message;
  w.notes = d.notes;
  return w;
}

protocol::WireEvalStats ToWire(const EvalStats& s) {
  protocol::WireEvalStats w;
  w.derived_facts = s.derived_facts;
  w.rounds = s.rounds;
  w.rule_firings = s.rule_firings;
  w.index_probes = s.index_probes;
  w.prefix_probes = s.prefix_probes;
  w.suffix_probes = s.suffix_probes;
  w.full_scans = s.full_scans;
  w.delta_scans = s.delta_scans;
  w.delta_index_probes = s.delta_index_probes;
  w.compile_seconds = s.compile_seconds;
  w.run_seconds = s.run_seconds;
  return w;
}

/// Shard counters sum; wall times take the max — the shards ran in
/// parallel, so the slowest one is the cluster's wall time.
void Accumulate(protocol::WireEvalStats* into,
                const protocol::WireEvalStats& s) {
  into->derived_facts += s.derived_facts;
  into->rounds = std::max(into->rounds, s.rounds);
  into->rule_firings += s.rule_firings;
  into->index_probes += s.index_probes;
  into->prefix_probes += s.prefix_probes;
  into->suffix_probes += s.suffix_probes;
  into->full_scans += s.full_scans;
  into->delta_scans += s.delta_scans;
  into->delta_index_probes += s.delta_index_probes;
  into->compile_seconds = std::max(into->compile_seconds, s.compile_seconds);
  into->run_seconds = std::max(into->run_seconds, s.run_seconds);
}

/// The residual path's shard-side query: one copy rule per EDB relation
/// of the user's program, each deriving into a fresh *alias* relation
/// ("__gather_R(vars) <- R(vars)"), so a plain `run` returns exactly the
/// shard's partition of those relations. The alias is load-bearing: a
/// shard answers with the *derived* overlay only, and derived facts that
/// duplicate visible base facts are suppressed — an identity rule with
/// the EDB relation itself as head would dump nothing. `aliases` maps
/// each alias RelId back to the real one for re-assembly at the
/// coordinator. No new message type, no special shard support.
Result<Program> BuildDumpProgram(
    Universe& u, const std::set<RelId>& edb_rels,
    std::vector<std::pair<RelId, RelId>>* aliases) {
  Program dump;
  dump.strata.emplace_back();
  for (RelId rel : edb_rels) {
    // Pick an alias name no relation the coordinator has seen uses (a
    // shard could only collide via a write that bypassed the
    // coordinator, which already forfeits coherence — see the cache
    // caveat in the file comment).
    std::string alias_name = "__gather_" + u.RelName(rel);
    while (u.FindRel(alias_name).ok()) alias_name += '_';
    uint32_t arity = u.RelArity(rel);
    SEQDL_ASSIGN_OR_RETURN(RelId alias, u.InternRel(alias_name, arity));
    aliases->emplace_back(alias, rel);

    Rule r;
    r.head.rel = alias;
    Predicate body;
    body.rel = rel;
    for (uint32_t i = 0; i < arity; ++i) {
      VarId v = u.InternVar(VarKind::kPath, "d" + std::to_string(i));
      PathExpr e = VarExpr(u, v);
      r.head.args.push_back(e);
      body.args.push_back(e);
    }
    r.body.push_back(Literal::Pred(std::move(body)));
    dump.strata[0].rules.push_back(std::move(r));
  }
  return dump;
}

}  // namespace

Result<std::vector<ShardAddress>> ParseShardList(std::string_view spec) {
  std::vector<ShardAddress> shards;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view item = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) {
      return Status::InvalidArgument(
          "empty shard entry: expected host:port[,host:port...]");
    }
    size_t colon = item.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == item.size()) {
      return Status::InvalidArgument("bad shard address '" +
                                     std::string(item) +
                                     "': expected host:port");
    }
    ShardAddress addr;
    addr.host = std::string(item.substr(0, colon));
    uint32_t port = 0;
    for (char c : item.substr(colon + 1)) {
      if (c < '0' || c > '9' || port > 65535) {
        return Status::InvalidArgument("bad shard port in '" +
                                       std::string(item) + "'");
      }
      port = port * 10 + static_cast<uint32_t>(c - '0');
    }
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument("bad shard port in '" +
                                     std::string(item) + "'");
    }
    addr.port = static_cast<uint16_t>(port);
    shards.push_back(std::move(addr));
  }
  if (shards.empty()) {
    return Status::InvalidArgument(
        "empty shard list: expected host:port[,host:port...]");
  }
  return shards;
}

Coordinator::Coordinator(Universe& u, std::vector<ShardAddress> shards,
                         CoordinatorOptions opts)
    : u_(&u),
      opts_(std::move(opts)),
      partitioner_(static_cast<uint32_t>(shards.size()), opts_.partition),
      epochs_(shards.size()) {
  shards_.reserve(shards.size());
  for (ShardAddress& addr : shards) {
    auto shard = std::make_unique<Shard>();
    shard->addr = std::move(addr);
    shards_.push_back(std::move(shard));
  }
}

ClientOptions Coordinator::MakeClientOptions() const {
  ClientOptions copts;
  copts.connect_timeout_ms = opts_.connect_timeout_ms;
  copts.io_timeout_ms = opts_.io_timeout_ms;
  copts.max_frame_bytes = opts_.max_frame_bytes;
  return copts;
}

Status Coordinator::NameShardError(size_t i, const Status& st) const {
  StatusCode code = st.code();
  if (code != StatusCode::kDeadlineExceeded && LooksLikeTransportFailure(st)) {
    code = StatusCode::kUnavailable;
  }
  return Status(code,
                "shard " + shards_[i]->addr.ToString() + ": " + st.message());
}

void Coordinator::UpdateEpoch(size_t i, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  TrackedEpoch& t = epochs_[i];
  // Epochs are monotonic per shard; a pinned-run epoch may trail a
  // racing append's, so only move forward.
  if (!t.known || epoch > t.epoch) {
    t.known = true;
    t.epoch = std::max(t.epoch, epoch);
  }
}

std::vector<Coordinator::TrackedEpoch> Coordinator::SnapshotEpochs() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epochs_;
}

template <typename T>
Result<T> Coordinator::CallShard(size_t i,
                                 const std::function<Result<T>(Client&)>& fn) {
  Shard& s = *shards_[i];
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.client.has_value()) {
    Result<Client> c =
        Client::Connect(s.addr.host, s.addr.port, MakeClientOptions());
    if (!c.ok()) return NameShardError(i, c.status());
    // Handshake before anything else: a mismatched shard fails every
    // request with the structured version error, never a misdecode.
    Result<protocol::HelloReply> hello = c->Hello();
    if (!hello.ok()) return NameShardError(i, hello.status());
    Result<protocol::DbInfo> info = c->Epoch();
    if (!info.ok()) return NameShardError(i, info.status());
    UpdateEpoch(i, info->epoch);
    s.client.emplace(std::move(*c));
  }
  Result<T> r = fn(*s.client);
  if (!r.ok() && LooksLikeTransportFailure(r.status())) {
    // The stream position is unknown after a transport/deadline failure:
    // drop the connection (the next call reconnects) and name the shard.
    s.client.reset();
    return NameShardError(i, r.status());
  }
  return r;
}

template <typename T>
std::vector<Result<T>> Coordinator::Scatter(
    const std::function<Result<T>(Client&, size_t)>& fn) {
  std::vector<Result<T>> out(
      shards_.size(), Result<T>(Status::Internal("shard call not reached")));
  std::vector<std::thread> threads;
  threads.reserve(shards_.size() > 0 ? shards_.size() - 1 : 0);
  for (size_t i = 1; i < shards_.size(); ++i) {
    threads.emplace_back([this, &fn, &out, i] {
      out[i] = CallShard<T>(
          i, [&fn, i](Client& c) { return fn(c, i); });
    });
  }
  out[0] =
      CallShard<T>(0, [&fn](Client& c) { return fn(c, 0); });
  for (std::thread& t : threads) t.join();
  return out;
}

template <typename T>
Status Coordinator::FirstError(const std::vector<Result<T>>& results) const {
  for (const Result<T>& r : results) {
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

Result<protocol::CompileReply> Coordinator::Compile(
    const protocol::CompileRequest& req) {
  // Parse locally first: a parse error costs no shard traffic and is
  // annotated with the client's source name exactly as a server would.
  Result<Program> program = ParseProgram(*u_, req.program);
  if (!program.ok()) {
    return protocol::AnnotateParseError(req.source_name, program.status());
  }

  std::vector<Result<protocol::CompileReply>> results =
      Scatter<protocol::CompileReply>(
          [&req](Client& c, size_t) {
            return c.Compile(req.program, req.source_name);
          });
  SEQDL_RETURN_IF_ERROR(FirstError(results));

  protocol::CompileReply reply = *results[0];
  reply.cache_hit = true;
  for (const Result<protocol::CompileReply>& r : results) {
    reply.cache_hit = reply.cache_hit && r->cache_hit;
    reply.compile_seconds = std::max(reply.compile_seconds,
                                     r->compile_seconds);
  }

  // Ride the cluster's own findings along with the shard's lints: the
  // SD2xx locality classification tells the client where its query will
  // execute (see analysis/locality.h).
  LocalityOptions lopts;
  for (const std::string& name : opts_.partition.broadcast) {
    Result<RelId> rel = u_->FindRel(name);
    if (rel.ok()) lopts.broadcast.insert(*rel);
  }
  DiagnosticList diags;
  AnalyzeLocality(*u_, *program, lopts, &diags);
  for (const Diagnostic& d : diags.all()) {
    reply.diagnostics.push_back(ToWire(d));
  }
  return reply;
}

Result<protocol::RunReply> Coordinator::Run(
    const protocol::RunRequest& req, const std::function<bool()>& cancel) {
  Result<Program> program = ParseProgram(*u_, req.program);
  if (!program.ok()) {
    return protocol::AnnotateParseError(req.source_name, program.status());
  }

  const std::string cache_key = req.output_rel + '\n' + req.program;
  if (opts_.result_cache_entries > 0) {
    std::optional<protocol::RunReply> hit = CacheLookup(cache_key);
    if (hit.has_value()) return *std::move(hit);
  }

  LocalityOptions lopts;
  bool pinned = false;
  for (RelId rel : AllRels(*program)) {
    const std::string& name = u_->RelName(rel);
    if (opts_.partition.broadcast.count(name) != 0) {
      lopts.broadcast.insert(rel);
    }
    pinned = pinned || opts_.partition.pinned.count(name) != 0;
  }
  LocalityReport report = AnalyzeLocality(*u_, *program, lopts);

  std::vector<uint64_t> pinned_epochs;
  Result<protocol::RunReply> reply =
      (report.cls == LocalityClass::kTransparent && !pinned)
          ? RunTransparent(req, &pinned_epochs)
          : RunResidual(req, std::move(program).value(), cancel,
                        &pinned_epochs);
  if (reply.ok() && opts_.result_cache_entries > 0 &&
      pinned_epochs.size() == shards_.size()) {
    CacheStore(cache_key, std::move(pinned_epochs), *reply);
  }
  return reply;
}

Result<protocol::RunReply> Coordinator::RunTransparent(
    const protocol::RunRequest& req, std::vector<uint64_t>* pinned_epochs) {
  std::vector<Result<protocol::RunReply>> results =
      Scatter<protocol::RunReply>([&req](Client& c, size_t) {
        return c.Run(req.program, req.output_rel, req.source_name,
                     req.collect_derived_stats);
      });
  SEQDL_RETURN_IF_ERROR(FirstError(results));

  protocol::RunReply out;
  Instance merged;
  for (size_t i = 0; i < results.size(); ++i) {
    const protocol::RunReply& r = *results[i];
    UpdateEpoch(i, r.epoch);
    pinned_epochs->push_back(r.epoch);
    out.epoch += r.epoch;
    out.segments += r.segments;
    Accumulate(&out.stats, r.stats);
    // Shard answers are Instance::ToString renderings; re-parsing into
    // the coordinator's universe and unioning dedupes the overlap
    // (broadcast-derived facts appear on every shard) with set
    // semantics, and the final ToString is sorted — byte-identical to a
    // single-node rendering of the same fact set.
    SEQDL_ASSIGN_OR_RETURN(Instance part, ParseInstance(*u_, r.rendered));
    merged.UnionWith(std::move(part));
  }
  out.rendered = merged.ToString(*u_);
  return out;
}

Result<protocol::RunReply> Coordinator::RunResidual(
    const protocol::RunRequest& req, Program program,
    const std::function<bool()>& cancel,
    std::vector<uint64_t>* pinned_epochs) {
  protocol::RunReply out;
  Instance gathered;
  std::set<RelId> edb_rels = EdbRels(program);
  if (!edb_rels.empty()) {
    std::vector<std::pair<RelId, RelId>> aliases;
    SEQDL_ASSIGN_OR_RETURN(Program dump,
                           BuildDumpProgram(*u_, edb_rels, &aliases));
    std::string dump_text = FormatProgram(*u_, dump);
    std::vector<Result<protocol::RunReply>> results =
        Scatter<protocol::RunReply>([&dump_text](Client& c, size_t) {
          return c.Run(dump_text, /*output_rel=*/"",
                       /*source_name=*/"<edb-gather>",
                       /*collect_derived_stats=*/false);
        });
    SEQDL_RETURN_IF_ERROR(FirstError(results));
    for (size_t i = 0; i < results.size(); ++i) {
      const protocol::RunReply& r = *results[i];
      UpdateEpoch(i, r.epoch);
      pinned_epochs->push_back(r.epoch);
      out.epoch += r.epoch;
      out.segments += r.segments;
      SEQDL_ASSIGN_OR_RETURN(Instance part, ParseInstance(*u_, r.rendered));
      // Un-alias: the shards answered under the dump's alias heads.
      for (const auto& [alias, real] : aliases) {
        for (const Tuple& t : part.Tuples(alias)) gathered.Add(real, t);
      }
    }
  }

  // Finish locally with single-node machinery end to end — Database +
  // Session::Run has exactly the derived-only overlay semantics a
  // standalone server renders, so the answer matches byte for byte.
  SEQDL_ASSIGN_OR_RETURN(PreparedProgram prepared,
                         Engine::Compile(*u_, std::move(program), {}));
  SEQDL_ASSIGN_OR_RETURN(Database db,
                         Database::Open(*u_, std::move(gathered)));
  Session session = db.Snapshot();
  RunOptions ropts = opts_.residual_run;
  ropts.collect_derived_stats = req.collect_derived_stats;
  if (cancel) {
    if (ropts.cancel) {
      std::function<bool()> base = ropts.cancel;
      ropts.cancel = [base, cancel] { return base() || cancel(); };
    } else {
      ropts.cancel = cancel;
    }
  }
  EvalStats stats;
  SEQDL_ASSIGN_OR_RETURN(Instance derived, session.Run(prepared, ropts,
                                                       &stats));
  SEQDL_ASSIGN_OR_RETURN(out.rendered, Render(derived, req.output_rel));
  out.stats = ToWire(stats);
  return out;
}

Result<std::string> Coordinator::Render(const Instance& derived,
                                        const std::string& output_rel) const {
  // Mirrors DatabaseService::Render, including the error for an unknown
  // output relation.
  if (output_rel.empty()) return derived.ToString(*u_);
  SEQDL_ASSIGN_OR_RETURN(RelId rel, u_->FindRel(output_rel));
  return derived.Project({rel}).ToString(*u_);
}

Result<protocol::AppendReply> Coordinator::Append(
    const protocol::AppendRequest& req) {
  Result<Instance> parsed = ParseInstance(*u_, req.facts);
  if (!parsed.ok()) {
    return protocol::AnnotateParseError(req.source_name, parsed.status());
  }

  // Route partitioned facts to their owners; broadcast facts go to every
  // shard but are *counted* once (shard 0's reply), so the aggregate
  // matches what a single node would have reported.
  std::vector<Instance> routed(shards_.size());
  Instance bcast;
  for (RelId rel : parsed->Relations()) {
    bool is_bcast = partitioner_.IsBroadcast(*u_, rel);
    for (const Tuple& t : parsed->Tuples(rel)) {
      if (is_bcast) {
        bcast.Add(rel, t);
      } else {
        routed[partitioner_.ShardOf(*u_, rel, t)].Add(rel, t);
      }
    }
  }

  protocol::AppendReply out;
  std::vector<std::string> routed_text(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!routed[i].Empty()) routed_text[i] = routed[i].ToString(*u_);
  }
  std::string bcast_text = bcast.Empty() ? std::string() : bcast.ToString(*u_);

  std::vector<Result<protocol::AppendReply>> results =
      Scatter<protocol::AppendReply>(
          [&](Client& c, size_t i) -> Result<protocol::AppendReply> {
            uint64_t appended = 0;
            protocol::DbInfo info;
            bool have_info = false;
            if (!routed_text[i].empty()) {
              SEQDL_ASSIGN_OR_RETURN(
                  protocol::AppendReply r,
                  c.Append(routed_text[i], req.source_name));
              appended += r.appended;
              info = r.db;
              have_info = true;
            }
            if (!bcast_text.empty()) {
              SEQDL_ASSIGN_OR_RETURN(
                  protocol::AppendReply r,
                  c.Append(bcast_text, req.source_name));
              // Broadcast copies land on every shard; only the primary's
              // count enters the aggregate.
              if (i == 0) appended += r.appended;
              info = r.db;
              have_info = true;
            }
            // Nothing to send still costs an epoch probe so the reply
            // carries fresh shard info.
            if (!have_info) {
              SEQDL_ASSIGN_OR_RETURN(info, c.Epoch());
            }
            protocol::AppendReply r;
            r.appended = appended;
            r.db = info;
            return r;
          });
  SEQDL_RETURN_IF_ERROR(FirstError(results));

  for (size_t i = 0; i < results.size(); ++i) {
    const protocol::AppendReply& r = *results[i];
    UpdateEpoch(i, r.db.epoch);
    out.appended += r.appended;
    out.db.epoch += r.db.epoch;
    out.db.segments += r.db.segments;
    out.db.facts += r.db.facts;
    out.db.on_disk_bytes += r.db.on_disk_bytes;
    out.db.wal_bytes += r.db.wal_bytes;
    out.db.manifest_generation += r.db.manifest_generation;
  }
  return out;
}

Result<protocol::RetractReply> Coordinator::Retract(
    const protocol::RetractRequest& req) {
  Result<Instance> parsed = ParseInstance(*u_, req.facts);
  if (!parsed.ok()) {
    return protocol::AnnotateParseError(req.source_name, parsed.status());
  }

  std::vector<Instance> routed(shards_.size());
  Instance bcast;
  for (RelId rel : parsed->Relations()) {
    bool is_bcast = partitioner_.IsBroadcast(*u_, rel);
    for (const Tuple& t : parsed->Tuples(rel)) {
      if (is_bcast) {
        bcast.Add(rel, t);
      } else {
        routed[partitioner_.ShardOf(*u_, rel, t)].Add(rel, t);
      }
    }
  }

  protocol::RetractReply out;
  std::vector<std::string> routed_text(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!routed[i].Empty()) routed_text[i] = routed[i].ToString(*u_);
  }
  std::string bcast_text = bcast.Empty() ? std::string() : bcast.ToString(*u_);

  std::vector<Result<protocol::RetractReply>> results =
      Scatter<protocol::RetractReply>(
          [&](Client& c, size_t i) -> Result<protocol::RetractReply> {
            uint64_t retracted = 0;
            protocol::DbInfo info;
            bool have_info = false;
            if (!routed_text[i].empty()) {
              SEQDL_ASSIGN_OR_RETURN(
                  protocol::RetractReply r,
                  c.Retract(routed_text[i], req.source_name));
              retracted += r.retracted;
              info = r.db;
              have_info = true;
            }
            if (!bcast_text.empty()) {
              SEQDL_ASSIGN_OR_RETURN(
                  protocol::RetractReply r,
                  c.Retract(bcast_text, req.source_name));
              if (i == 0) retracted += r.retracted;
              info = r.db;
              have_info = true;
            }
            if (!have_info) {
              SEQDL_ASSIGN_OR_RETURN(info, c.Epoch());
            }
            protocol::RetractReply r;
            r.retracted = retracted;
            r.db = info;
            return r;
          });
  SEQDL_RETURN_IF_ERROR(FirstError(results));

  for (size_t i = 0; i < results.size(); ++i) {
    const protocol::RetractReply& r = *results[i];
    UpdateEpoch(i, r.db.epoch);
    out.retracted += r.retracted;
    out.db.epoch += r.db.epoch;
    out.db.segments += r.db.segments;
    out.db.facts += r.db.facts;
    out.db.on_disk_bytes += r.db.on_disk_bytes;
    out.db.wal_bytes += r.db.wal_bytes;
    out.db.manifest_generation += r.db.manifest_generation;
  }
  return out;
}

Result<protocol::DbInfo> Coordinator::Info() {
  std::vector<Result<protocol::DbInfo>> results =
      Scatter<protocol::DbInfo>(
          [](Client& c, size_t) { return c.Epoch(); });
  SEQDL_RETURN_IF_ERROR(FirstError(results));
  protocol::DbInfo out;
  for (size_t i = 0; i < results.size(); ++i) {
    const protocol::DbInfo& r = *results[i];
    UpdateEpoch(i, r.epoch);
    out.epoch += r.epoch;
    out.segments += r.segments;
    out.facts += r.facts;
    out.on_disk_bytes += r.on_disk_bytes;
    out.wal_bytes += r.wal_bytes;
    out.manifest_generation += r.manifest_generation;
  }
  return out;
}

Result<protocol::CompactReply> Coordinator::Compact() {
  std::vector<Result<protocol::CompactReply>> results =
      Scatter<protocol::CompactReply>(
          [](Client& c, size_t) { return c.Compact(); });
  SEQDL_RETURN_IF_ERROR(FirstError(results));
  protocol::CompactReply out;
  for (size_t i = 0; i < results.size(); ++i) {
    const protocol::CompactReply& r = *results[i];
    UpdateEpoch(i, r.db.epoch);
    out.folded = out.folded || r.folded;
    out.db.epoch += r.db.epoch;
    out.db.segments += r.db.segments;
    out.db.facts += r.db.facts;
    out.db.on_disk_bytes += r.db.on_disk_bytes;
    out.db.wal_bytes += r.db.wal_bytes;
    out.db.manifest_generation += r.db.manifest_generation;
  }
  return out;
}

Result<protocol::StatsReply> Coordinator::Stats() {
  std::vector<Result<protocol::StatsReply>> results =
      Scatter<protocol::StatsReply>(
          [](Client& c, size_t) { return c.Stats(); });
  SEQDL_RETURN_IF_ERROR(FirstError(results));
  protocol::StatsReply out;
  for (size_t i = 0; i < results.size(); ++i) {
    const protocol::StatsReply& r = *results[i];
    out.rendered += "-- shard " + shards_[i]->addr.ToString() + " --\n";
    out.rendered += r.rendered;
    out.cache_hits += r.cache_hits;
    out.cache_misses += r.cache_misses;
    out.cache_evictions += r.cache_evictions;
    out.cache_entries += r.cache_entries;
    out.cache_bytes += r.cache_bytes;
    out.view_hits += r.view_hits;
    out.view_cold_runs += r.view_cold_runs;
    out.view_delta_refreshes += r.view_delta_refreshes;
    out.view_dred_refreshes += r.view_dred_refreshes;
    out.view_strata_recomputed += r.view_strata_recomputed;
  }
  return out;
}

Status Coordinator::ShutdownShards() {
  std::vector<Result<bool>> results = Scatter<bool>(
      [](Client& c, size_t) -> Result<bool> {
        Status st = c.Shutdown();
        if (!st.ok()) return st;
        return true;
      });
  return FirstError(results);
}

void Coordinator::CacheStore(const std::string& key,
                             std::vector<uint64_t> epochs,
                             const protocol::RunReply& reply) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second.epochs = std::move(epochs);
    it->second.reply = reply;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  while (cache_.size() >= opts_.result_cache_entries && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  CachedResult entry;
  entry.epochs = std::move(epochs);
  entry.reply = reply;
  entry.lru = lru_.begin();
  cache_.emplace(key, std::move(entry));
}

std::optional<protocol::RunReply> Coordinator::CacheLookup(
    const std::string& key) {
  std::vector<TrackedEpoch> current = SnapshotEpochs();
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return std::nullopt;
  if (it->second.epochs.size() != current.size()) return std::nullopt;
  for (size_t i = 0; i < current.size(); ++i) {
    // An unknown shard epoch means the shard was never reached this
    // session — never answer from cache without knowing its state.
    if (!current[i].known || current[i].epoch != it->second.epochs[i]) {
      return std::nullopt;
    }
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  protocol::RunReply reply = it->second.reply;
  reply.result_cached = true;
  return reply;
}

}  // namespace seqdl
