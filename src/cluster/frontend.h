// The coordinator's wire front end: a server/server.h RequestHandler
// that dispatches the standard protocol onto a Coordinator, which is
// what makes a coordinator indistinguishable from a server on the wire —
// `seqdl query --connect` works against either.
//
//   Universe u;
//   Coordinator coord(u, shards);
//   CoordinatorHandler handler(coord);
//   SEQDL_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
//                          Server::Start(handler, {.port = 0}));
//
// A kShutdown request drains the coordinator front end; with
// forward_shutdown set (the default for `seqdl coordinate`) it also
// asks every shard to shut down first, so one `shutdown` from a client
// takes the whole cluster down.
#ifndef SEQDL_CLUSTER_FRONTEND_H_
#define SEQDL_CLUSTER_FRONTEND_H_

#include <functional>
#include <string>

#include "src/cluster/coordinator.h"
#include "src/server/server.h"

namespace seqdl {

class CoordinatorHandler : public RequestHandler {
 public:
  /// When `forward_shutdown` is set, a client's kShutdown is broadcast
  /// to the shards (best-effort) before the coordinator itself drains.
  explicit CoordinatorHandler(Coordinator& coordinator,
                              bool forward_shutdown = true)
      : coordinator_(coordinator), forward_shutdown_(forward_shutdown) {}

  std::string Handle(const std::string& payload,
                     const std::function<bool()>& cancel,
                     bool* shutdown) override;

 private:
  Coordinator& coordinator_;
  bool forward_shutdown_;
};

}  // namespace seqdl

#endif  // SEQDL_CLUSTER_FRONTEND_H_
