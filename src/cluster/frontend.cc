#include "src/cluster/frontend.h"

namespace seqdl {

std::string CoordinatorHandler::Handle(const std::string& payload,
                                       const std::function<bool()>& cancel,
                                       bool* shutdown) {
  using protocol::MsgType;
  *shutdown = false;
  MsgType orig = payload.empty() ? MsgType::kReply
                                 : static_cast<MsgType>(
                                       static_cast<uint8_t>(payload[0]));
  Result<protocol::Request> req = protocol::DecodeRequest(payload);
  if (!req.ok()) return protocol::EncodeErrorReply(orig, req.status());

  switch (req->type) {
    case MsgType::kCompile: {
      Result<protocol::CompileReply> r = coordinator_.Compile(req->compile);
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeCompileReply(*r);
    }
    case MsgType::kRun: {
      Result<protocol::RunReply> r = coordinator_.Run(req->run, cancel);
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeRunReply(*r);
    }
    case MsgType::kAppend: {
      Result<protocol::AppendReply> r = coordinator_.Append(req->append);
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeAppendReply(*r);
    }
    case MsgType::kRetract: {
      Result<protocol::RetractReply> r = coordinator_.Retract(req->retract);
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeRetractReply(*r);
    }
    case MsgType::kEpoch: {
      Result<protocol::DbInfo> r = coordinator_.Info();
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeEpochReply(*r);
    }
    case MsgType::kCompact: {
      Result<protocol::CompactReply> r = coordinator_.Compact();
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeCompactReply(*r);
    }
    case MsgType::kStats: {
      Result<protocol::StatsReply> r = coordinator_.Stats();
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeStatsReply(*r);
    }
    case MsgType::kHello:
      // The coordinator answers for itself: it speaks kWireVersion to
      // its clients regardless of what its shards speak (mismatched
      // shards fail per-request with the structured shard error).
      return protocol::EncodeHelloReply({protocol::kWireVersion});
    case MsgType::kShutdown:
      if (forward_shutdown_) {
        // Best-effort: an unreachable shard must not keep the
        // coordinator up; its error is reported nowhere because the
        // client asked the cluster to die either way.
        (void)coordinator_.ShutdownShards();
      }
      *shutdown = true;
      return protocol::EncodeShutdownReply();
    default:
      return protocol::EncodeErrorReply(
          req->type, Status::Unimplemented("request type not handled"));
  }
}

}  // namespace seqdl
