// Hash partitioning of EDB facts across cluster shards. A fact
// R(v0, ..., vn) lives on the shard selected by a content hash of the
// *rendered* first-column value — rendered, not the raw PathId, because
// PathIds are per-Universe intern handles while the rendered text is
// identical on every node, which is what makes the placement stable
// across processes, restarts, and platforms.
//
// The relation name deliberately does NOT perturb the shard of a keyed
// fact: E(a, b) and F(a, c) must land on the same shard, because
// cross-relation co-location on the shared key is exactly what makes a
// join keyed on the partition column shard-local (the invariant the
// locality pass in analysis/locality.h certifies). The name is the
// routing key only for arity-0 relations (all of whose facts co-locate
// anyway) and for the per-relation overrides:
//   * pinned:    all facts of the relation go to one named shard
//                (relation affinity — co-locate with a fixed resource);
//   * broadcast: the relation is replicated in full on every shard
//                (small dimension tables; joins against them are always
//                shard-local — see analysis/locality.h).
//
// The hash is FNV-1a 64 — boring on purpose: trivially portable, no
// seed, and good enough spread for routing keys.
#ifndef SEQDL_CLUSTER_PARTITIONER_H_
#define SEQDL_CLUSTER_PARTITIONER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/engine/instance.h"
#include "src/term/universe.h"

namespace seqdl {

struct PartitionerOptions {
  /// Relation name -> shard index: all facts of the relation route there
  /// regardless of content. Indices are taken modulo the shard count.
  std::map<std::string, uint32_t> pinned;
  /// Relations replicated on every shard instead of partitioned. ShardOf
  /// reports shard 0 (the "primary" copy, so appends are counted once);
  /// Split copies them into every output partition.
  std::set<std::string> broadcast;
};

class Partitioner {
 public:
  explicit Partitioner(uint32_t num_shards, PartitionerOptions opts = {});

  uint32_t num_shards() const { return num_shards_; }
  const PartitionerOptions& options() const { return opts_; }

  /// The platform-stable routing hash: FNV-1a 64 over the key string
  /// (the rendered first-column value; the relation name for arity-0
  /// facts).
  static uint64_t HashKey(std::string_view key);

  /// True when the relation is replicated rather than partitioned.
  bool IsBroadcast(const Universe& u, RelId rel) const {
    return opts_.broadcast.count(u.RelName(rel)) != 0;
  }

  /// The shard owning fact `t` of `rel`: its pinned shard when the
  /// relation has one, else HashKey of the rendered first value (the
  /// relation name when `t` is empty) modulo the shard count. For a
  /// broadcast relation this is the primary copy's shard (0).
  uint32_t ShardOf(const Universe& u, RelId rel, const Tuple& t) const;

  /// Splits `in` into one Instance per shard: partitioned facts go to
  /// their owning shard, broadcast facts into every partition.
  std::vector<Instance> Split(const Universe& u, const Instance& in) const;

 private:
  uint32_t num_shards_;
  PartitionerOptions opts_;
};

}  // namespace seqdl

#endif  // SEQDL_CLUSTER_PARTITIONER_H_
