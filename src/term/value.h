// The value model of Sequence Datalog (paper §2.1):
//
//   * every atomic value is a value;
//   * every finite sequence of values is a *path*;
//   * if p is a path, <p> is a *packed value*, which is again a value.
//
// Representation: a Value is a single uint32_t. The most significant bit
// distinguishes atoms from packed values; the payload is either an AtomId
// (index into the Universe's atom table) or a PathId (index into the
// Universe's hash-consed path store). Paths are interned, so structural
// equality of arbitrarily nested values is integer comparison.
#ifndef SEQDL_TERM_VALUE_H_
#define SEQDL_TERM_VALUE_H_

#include <cstdint>
#include <functional>

namespace seqdl {

/// Index of an atomic value in Universe's atom table.
using AtomId = uint32_t;

/// Index of an interned path in Universe's path store. PathId 0 is always
/// the empty path.
using PathId = uint32_t;

/// The empty path's id in every Universe.
inline constexpr PathId kEmptyPath = 0;

/// A single value: an atomic value or a packed value <p>.
class Value {
 public:
  Value() : bits_(0) {}

  static Value Atom(AtomId id) { return Value(id & kPayloadMask); }
  static Value Packed(PathId path) {
    return Value(kPackedBit | (path & kPayloadMask));
  }

  bool is_atom() const { return (bits_ & kPackedBit) == 0; }
  bool is_packed() const { return (bits_ & kPackedBit) != 0; }

  /// Requires is_atom().
  AtomId atom() const { return bits_ & kPayloadMask; }
  /// Requires is_packed().
  PathId packed_path() const { return bits_ & kPayloadMask; }

  uint32_t bits() const { return bits_; }

  friend bool operator==(Value a, Value b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Value a, Value b) { return a.bits_ != b.bits_; }
  friend bool operator<(Value a, Value b) { return a.bits_ < b.bits_; }

 private:
  explicit Value(uint32_t bits) : bits_(bits) {}

  static constexpr uint32_t kPackedBit = 0x80000000u;
  static constexpr uint32_t kPayloadMask = 0x7fffffffu;

  uint32_t bits_;
};

struct ValueHash {
  size_t operator()(Value v) const {
    // splitmix-style scramble of the raw bits.
    uint64_t x = v.bits();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace seqdl

namespace std {
template <>
struct hash<seqdl::Value> {
  size_t operator()(seqdl::Value v) const { return seqdl::ValueHash()(v); }
};
}  // namespace std

#endif  // SEQDL_TERM_VALUE_H_
