#include "src/term/universe.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

namespace seqdl {

namespace {
size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}
}  // namespace

size_t Universe::PathKeyHash::operator()(const std::vector<Value>& p) const {
  size_t h = 0x42d1a7u;
  for (Value v : p) h = HashCombine(h, ValueHash()(v));
  return h;
}

Universe::PathShard::~PathShard() {
  for (std::atomic<std::vector<Value>*>& b : blocks) {
    delete[] b.load(std::memory_order_relaxed);
  }
}

uint32_t Universe::PathBlockOf(uint32_t local) {
  return static_cast<uint32_t>(
             std::bit_width((local >> kPathFirstBlockBits) + 1)) -
         1;
}

uint32_t Universe::PathOffsetOf(uint32_t local, uint32_t block) {
  return local - (((1u << block) - 1) << kPathFirstBlockBits);
}

uint32_t Universe::PathBlockCapacity(uint32_t block) {
  return (1u << kPathFirstBlockBits) << block;
}

Universe::Universe() : path_shards_(new PathShard[kPathShards]) {
  // Reserve PathId 0 (shard 0, index 0) for the empty path: entry 0 of the
  // first block is a default-constructed (empty) vector, which is exactly
  // the empty path's contents.
  PathShard& s0 = path_shards_[0];
  s0.blocks[0].store(new std::vector<Value>[PathBlockCapacity(0)],
                     std::memory_order_release);
  s0.size = 1;
  s0.published_size.store(1, std::memory_order_relaxed);
}

Universe::~Universe() = default;

AtomId Universe::InternAtomLocked(std::string_view name) {
  auto it = atom_ids_.find(std::string(name));
  if (it != atom_ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(atom_names_.size());
  atom_names_.emplace_back(name);
  atom_ids_.emplace(std::string(name), id);
  return id;
}

AtomId Universe::InternAtom(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(atom_mu_);
  return InternAtomLocked(name);
}

const std::string& Universe::AtomName(AtomId id) const {
  std::shared_lock<std::shared_mutex> lock(atom_mu_);
  return atom_names_[id];
}

AtomId Universe::FreshAtom(std::string_view hint) {
  std::unique_lock<std::shared_mutex> lock(atom_mu_);
  std::string name = UniqueName(hint, atom_ids_, &fresh_atom_counter_);
  return InternAtomLocked(name);
}

size_t Universe::num_atoms() const {
  std::shared_lock<std::shared_mutex> lock(atom_mu_);
  return atom_names_.size();
}

PathId Universe::InternPath(std::span<const Value> values) {
  if (values.empty()) return kEmptyPath;
  std::vector<Value> key(values.begin(), values.end());
  uint32_t shard =
      static_cast<uint32_t>(PathKeyHash()(key)) & (kPathShards - 1);
  PathShard& s = path_shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.ids.find(key);
  if (it != s.ids.end()) return it->second;
  uint32_t local = s.size;
  if (local >= kMaxPathsPerShard) {
    // Unconditional (not assert): past this point the id would overflow
    // Value's 31-bit payload and the block array — fail loudly rather
    // than mint corrupt PathIds in release builds.
    std::fprintf(stderr,
                 "seqdl: Universe path shard full (%u paths); aborting\n",
                 local);
    std::abort();
  }
  uint32_t block_idx = PathBlockOf(local);
  std::vector<Value>* block = s.blocks[block_idx].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::vector<Value>[PathBlockCapacity(block_idx)];
    s.blocks[block_idx].store(block, std::memory_order_release);
  }
  PathId id = (local << kPathShardBits) | shard;
  // The entry is fully written before the id can escape: same-shard lookups
  // synchronize on mu, and any other transfer of the id between threads
  // carries its own happens-before edge.
  block[PathOffsetOf(local, block_idx)] = key;
  s.ids.emplace(std::move(key), id);
  s.size = local + 1;
  s.published_size.store(s.size, std::memory_order_relaxed);
  return id;
}

std::span<const Value> Universe::GetPath(PathId id) const {
  uint32_t shard = id & (kPathShards - 1);
  uint32_t local = id >> kPathShardBits;
  uint32_t block_idx = PathBlockOf(local);
  const std::vector<Value>* block =
      path_shards_[shard].blocks[block_idx].load(std::memory_order_acquire);
  assert(block != nullptr && "unknown PathId");
  return block[PathOffsetOf(local, block_idx)];
}

size_t Universe::num_paths() const {
  size_t n = 0;
  for (uint32_t s = 0; s < kPathShards; ++s) {
    n += path_shards_[s].published_size.load(std::memory_order_relaxed);
  }
  return n;
}

PathId Universe::Concat(PathId p1, PathId p2) {
  if (p1 == kEmptyPath) return p2;
  if (p2 == kEmptyPath) return p1;
  std::span<const Value> a = GetPath(p1), b = GetPath(p2);
  std::vector<Value> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return InternPath(out);
}

PathId Universe::Append(PathId p, Value v) {
  std::span<const Value> a = GetPath(p);
  std::vector<Value> out(a.begin(), a.end());
  out.push_back(v);
  return InternPath(out);
}

PathId Universe::SubPath(PathId p, size_t start, size_t len) {
  std::span<const Value> a = GetPath(p);
  assert(start + len <= a.size());
  return InternPath(a.subspan(start, len));
}

PathId Universe::SingletonPath(Value v) {
  return InternPath(std::span<const Value>(&v, 1));
}

bool Universe::IsFlatValue(Value v) const { return v.is_atom(); }

bool Universe::IsFlatPath(PathId p) const {
  for (Value v : GetPath(p)) {
    // A value inside a flat path must be atomic; packed values are exactly
    // the non-flat case, at any depth (the top level suffices because a
    // packed value *is* non-flatness).
    if (v.is_packed()) return false;
  }
  return true;
}

void Universe::CollectAtoms(PathId p, std::unordered_set<AtomId>* out) const {
  for (Value v : GetPath(p)) {
    if (v.is_atom()) {
      out->insert(v.atom());
    } else {
      CollectAtoms(v.packed_path(), out);
    }
  }
}

std::vector<PathId> Universe::AllSubPaths(PathId p) {
  std::span<const Value> a = GetPath(p);
  std::vector<PathId> out;
  out.push_back(kEmptyPath);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t len = 1; i + len <= a.size(); ++len) {
      out.push_back(InternPath(a.subspan(i, len)));
    }
  }
  // Deduplicate (repeated contents intern to the same id).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Universe::FormatValue(Value v) const {
  if (v.is_atom()) return AtomName(v.atom());
  return "<" + FormatPath(v.packed_path()) + ">";
}

std::string Universe::FormatPath(PathId p) const {
  std::span<const Value> a = GetPath(p);
  if (a.empty()) return "()";
  std::string out;
  for (size_t i = 0; i < a.size(); ++i) {
    if (i > 0) out += "·";  // interpunct, as in the paper
    out += FormatValue(a[i]);
  }
  return out;
}

VarId Universe::InternVarLocked(VarKind kind, std::string_view name) {
  std::string key = (kind == VarKind::kAtomic ? "@" : "$") + std::string(name);
  auto it = var_ids_.find(key);
  if (it != var_ids_.end()) return it->second;
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.emplace_back(name);
  var_kinds_.push_back(kind);
  var_ids_.emplace(std::move(key), id);
  return id;
}

VarId Universe::InternVar(VarKind kind, std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(var_mu_);
  return InternVarLocked(kind, name);
}

VarKind Universe::VarKindOf(VarId id) const {
  std::shared_lock<std::shared_mutex> lock(var_mu_);
  return var_kinds_[id];
}

const std::string& Universe::VarName(VarId id) const {
  std::shared_lock<std::shared_mutex> lock(var_mu_);
  return var_names_[id];
}

VarId Universe::FreshVar(VarKind kind, std::string_view hint) {
  // Candidate names are checked against both sigil variants so the fresh
  // name is unused regardless of kind. Choosing the name and interning it
  // happen under one lock, so the variable really is fresh even if other
  // threads intern concurrently.
  std::unique_lock<std::shared_mutex> lock(var_mu_);
  for (uint32_t i = fresh_var_counter_;; ++i) {
    std::string name = std::string(hint) + "_" + std::to_string(i);
    if (!var_ids_.count("@" + name) && !var_ids_.count("$" + name)) {
      fresh_var_counter_ = i + 1;
      return InternVarLocked(kind, name);
    }
  }
}

size_t Universe::num_vars() const {
  std::shared_lock<std::shared_mutex> lock(var_mu_);
  return var_names_.size();
}

Result<RelId> Universe::InternRelLocked(std::string_view name,
                                        uint32_t arity) {
  auto it = rel_ids_.find(std::string(name));
  if (it != rel_ids_.end()) {
    if (rel_arities_[it->second] != arity) {
      return Status::InvalidArgument(
          "relation " + std::string(name) + " used with arity " +
          std::to_string(arity) + " but previously declared with arity " +
          std::to_string(rel_arities_[it->second]));
    }
    return it->second;
  }
  RelId id = static_cast<RelId>(rel_names_.size());
  rel_names_.emplace_back(name);
  rel_arities_.push_back(arity);
  rel_ids_.emplace(std::string(name), id);
  return id;
}

Result<RelId> Universe::InternRel(std::string_view name, uint32_t arity) {
  std::unique_lock<std::shared_mutex> lock(rel_mu_);
  return InternRelLocked(name, arity);
}

Result<RelId> Universe::FindRel(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(rel_mu_);
  auto it = rel_ids_.find(std::string(name));
  if (it == rel_ids_.end()) {
    return Status::NotFound("unknown relation " + std::string(name));
  }
  return it->second;
}

const std::string& Universe::RelName(RelId id) const {
  std::shared_lock<std::shared_mutex> lock(rel_mu_);
  return rel_names_[id];
}

uint32_t Universe::RelArity(RelId id) const {
  std::shared_lock<std::shared_mutex> lock(rel_mu_);
  return rel_arities_[id];
}

RelId Universe::FreshRel(std::string_view hint, uint32_t arity) {
  std::unique_lock<std::shared_mutex> lock(rel_mu_);
  std::string name = UniqueName(hint, rel_ids_, &fresh_rel_counter_);
  Result<RelId> r = InternRelLocked(name, arity);
  assert(r.ok());
  return *r;
}

size_t Universe::num_rels() const {
  std::shared_lock<std::shared_mutex> lock(rel_mu_);
  return rel_names_.size();
}

PathId Universe::PathOfChars(std::string_view chars) {
  std::vector<Value> values;
  values.reserve(chars.size());
  for (char c : chars) {
    values.push_back(Value::Atom(InternAtom(std::string_view(&c, 1))));
  }
  return InternPath(values);
}

PathId Universe::PathOfWords(std::string_view words) {
  std::vector<Value> values;
  size_t i = 0;
  while (i < words.size()) {
    while (i < words.size() && words[i] == ' ') ++i;
    size_t j = i;
    while (j < words.size() && words[j] != ' ') ++j;
    if (j > i) values.push_back(Value::Atom(InternAtom(words.substr(i, j - i))));
    i = j;
  }
  return InternPath(values);
}

std::string Universe::UniqueName(
    std::string_view hint,
    const std::unordered_map<std::string, uint32_t>& used, uint32_t* counter) {
  for (uint32_t i = *counter;; ++i) {
    std::string name = std::string(hint) + "_" + std::to_string(i);
    if (!used.count(name)) {
      *counter = i + 1;
      return name;
    }
  }
}

}  // namespace seqdl
