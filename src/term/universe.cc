#include "src/term/universe.h"

#include <algorithm>
#include <cassert>

namespace seqdl {

namespace {
size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}
}  // namespace

size_t Universe::PathKeyHash::operator()(const std::vector<Value>& p) const {
  size_t h = 0x42d1a7u;
  for (Value v : p) h = HashCombine(h, ValueHash()(v));
  return h;
}

Universe::Universe() {
  // Reserve PathId 0 for the empty path.
  path_contents_.emplace_back();
  path_ids_.emplace(std::vector<Value>{}, kEmptyPath);
}

AtomId Universe::InternAtom(std::string_view name) {
  auto it = atom_ids_.find(std::string(name));
  if (it != atom_ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(atom_names_.size());
  atom_names_.emplace_back(name);
  atom_ids_.emplace(std::string(name), id);
  return id;
}

AtomId Universe::FreshAtom(std::string_view hint) {
  std::string name = UniqueName(hint, atom_ids_, &fresh_atom_counter_);
  return InternAtom(name);
}

PathId Universe::InternPath(std::span<const Value> values) {
  std::vector<Value> key(values.begin(), values.end());
  auto it = path_ids_.find(key);
  if (it != path_ids_.end()) return it->second;
  PathId id = static_cast<PathId>(path_contents_.size());
  path_contents_.push_back(key);
  path_ids_.emplace(std::move(key), id);
  return id;
}

std::span<const Value> Universe::GetPath(PathId id) const {
  assert(id < path_contents_.size());
  return path_contents_[id];
}

PathId Universe::Concat(PathId p1, PathId p2) {
  if (p1 == kEmptyPath) return p2;
  if (p2 == kEmptyPath) return p1;
  std::span<const Value> a = GetPath(p1), b = GetPath(p2);
  std::vector<Value> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return InternPath(out);
}

PathId Universe::Append(PathId p, Value v) {
  std::span<const Value> a = GetPath(p);
  std::vector<Value> out(a.begin(), a.end());
  out.push_back(v);
  return InternPath(out);
}

PathId Universe::SubPath(PathId p, size_t start, size_t len) {
  std::span<const Value> a = GetPath(p);
  assert(start + len <= a.size());
  return InternPath(a.subspan(start, len));
}

PathId Universe::SingletonPath(Value v) {
  return InternPath(std::span<const Value>(&v, 1));
}

bool Universe::IsFlatValue(Value v) const { return v.is_atom(); }

bool Universe::IsFlatPath(PathId p) const {
  for (Value v : GetPath(p)) {
    // A value inside a flat path must be atomic; packed values are exactly
    // the non-flat case, at any depth (the top level suffices because a
    // packed value *is* non-flatness).
    if (v.is_packed()) return false;
  }
  return true;
}

void Universe::CollectAtoms(PathId p, std::unordered_set<AtomId>* out) const {
  for (Value v : GetPath(p)) {
    if (v.is_atom()) {
      out->insert(v.atom());
    } else {
      CollectAtoms(v.packed_path(), out);
    }
  }
}

std::vector<PathId> Universe::AllSubPaths(PathId p) {
  std::span<const Value> a = GetPath(p);
  std::vector<PathId> out;
  out.push_back(kEmptyPath);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t len = 1; i + len <= a.size(); ++len) {
      out.push_back(InternPath(a.subspan(i, len)));
    }
  }
  // Deduplicate (repeated contents intern to the same id).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Universe::FormatValue(Value v) const {
  if (v.is_atom()) return AtomName(v.atom());
  return "<" + FormatPath(v.packed_path()) + ">";
}

std::string Universe::FormatPath(PathId p) const {
  std::span<const Value> a = GetPath(p);
  if (a.empty()) return "()";
  std::string out;
  for (size_t i = 0; i < a.size(); ++i) {
    if (i > 0) out += "·";  // interpunct, as in the paper
    out += FormatValue(a[i]);
  }
  return out;
}

VarId Universe::InternVar(VarKind kind, std::string_view name) {
  std::string key = (kind == VarKind::kAtomic ? "@" : "$") + std::string(name);
  auto it = var_ids_.find(key);
  if (it != var_ids_.end()) return it->second;
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.emplace_back(name);
  var_kinds_.push_back(kind);
  var_ids_.emplace(std::move(key), id);
  return id;
}

VarId Universe::FreshVar(VarKind kind, std::string_view hint) {
  // Candidate names are checked against both sigil variants so the fresh
  // name is unused regardless of kind.
  for (uint32_t i = fresh_var_counter_;; ++i) {
    std::string name = std::string(hint) + "_" + std::to_string(i);
    if (!var_ids_.count("@" + name) && !var_ids_.count("$" + name)) {
      fresh_var_counter_ = i + 1;
      return InternVar(kind, name);
    }
  }
}

Result<RelId> Universe::InternRel(std::string_view name, uint32_t arity) {
  auto it = rel_ids_.find(std::string(name));
  if (it != rel_ids_.end()) {
    if (rel_arities_[it->second] != arity) {
      return Status::InvalidArgument(
          "relation " + std::string(name) + " used with arity " +
          std::to_string(arity) + " but previously declared with arity " +
          std::to_string(rel_arities_[it->second]));
    }
    return it->second;
  }
  RelId id = static_cast<RelId>(rel_names_.size());
  rel_names_.emplace_back(name);
  rel_arities_.push_back(arity);
  rel_ids_.emplace(std::string(name), id);
  return id;
}

Result<RelId> Universe::FindRel(std::string_view name) const {
  auto it = rel_ids_.find(std::string(name));
  if (it == rel_ids_.end()) {
    return Status::NotFound("unknown relation " + std::string(name));
  }
  return it->second;
}

RelId Universe::FreshRel(std::string_view hint, uint32_t arity) {
  std::string name = UniqueName(hint, rel_ids_, &fresh_rel_counter_);
  Result<RelId> r = InternRel(name, arity);
  assert(r.ok());
  return *r;
}

PathId Universe::PathOfChars(std::string_view chars) {
  std::vector<Value> values;
  values.reserve(chars.size());
  for (char c : chars) {
    values.push_back(Value::Atom(InternAtom(std::string_view(&c, 1))));
  }
  return InternPath(values);
}

PathId Universe::PathOfWords(std::string_view words) {
  std::vector<Value> values;
  size_t i = 0;
  while (i < words.size()) {
    while (i < words.size() && words[i] == ' ') ++i;
    size_t j = i;
    while (j < words.size() && words[j] != ' ') ++j;
    if (j > i) values.push_back(Value::Atom(InternAtom(words.substr(i, j - i))));
    i = j;
  }
  return InternPath(values);
}

std::string Universe::UniqueName(
    std::string_view hint,
    const std::unordered_map<std::string, uint32_t>& used, uint32_t* counter) {
  for (uint32_t i = *counter;; ++i) {
    std::string name = std::string(hint) + "_" + std::to_string(i);
    if (!used.count(name)) {
      *counter = i + 1;
      return name;
    }
  }
}

}  // namespace seqdl
