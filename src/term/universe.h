// Universe: the owning context for all interned symbols of a seqdl session —
// atomic values, paths (hash-consed), variables, and relation names. Every
// seqdl component takes a Universe& explicitly; there is no global state.
#ifndef SEQDL_TERM_UNIVERSE_H_
#define SEQDL_TERM_UNIVERSE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/term/value.h"

namespace seqdl {

/// Identifier of a variable (atomic @x or path $x).
using VarId = uint32_t;

/// Identifier of a relation name.
using RelId = uint32_t;

/// The two kinds of variables of Sequence Datalog (paper §2.2): atomic
/// variables range over atomic values, path variables over paths.
enum class VarKind : uint8_t { kAtomic, kPath };

/// Owning symbol context. Interns atoms, paths, variables and relation
/// names, and generates fresh names for program transformations.
class Universe {
 public:
  Universe();

  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  // --- Atoms -------------------------------------------------------------

  /// Interns an atomic value by name; idempotent.
  AtomId InternAtom(std::string_view name);
  /// The printed name of an atom.
  const std::string& AtomName(AtomId id) const { return atom_names_[id]; }
  /// A fresh atom whose name starts with `hint` and collides with nothing
  /// interned so far.
  AtomId FreshAtom(std::string_view hint);
  size_t num_atoms() const { return atom_names_.size(); }

  // --- Paths (hash-consed) ----------------------------------------------

  /// Interns the path consisting of `values`; returns its id. The empty
  /// span maps to kEmptyPath.
  PathId InternPath(std::span<const Value> values);
  /// The values of an interned path.
  std::span<const Value> GetPath(PathId id) const;
  size_t PathLength(PathId id) const { return GetPath(id).size(); }
  size_t num_paths() const { return path_contents_.size(); }

  /// Concatenation p1 · p2.
  PathId Concat(PathId p1, PathId p2);
  /// p · v.
  PathId Append(PathId p, Value v);
  /// The contiguous subpath [start, start+len).
  PathId SubPath(PathId p, size_t start, size_t len);
  /// A one-value path.
  PathId SingletonPath(Value v);

  /// True iff the path contains no packed value at any nesting depth.
  bool IsFlatPath(PathId p) const;
  bool IsFlatValue(Value v) const;

  /// Inserts every atom occurring in `p` (at any depth) into `out`.
  void CollectAtoms(PathId p, std::unordered_set<AtomId>* out) const;

  /// All contiguous subpaths of p, including the empty path and p itself.
  std::vector<PathId> AllSubPaths(PathId p);

  // --- Formatting ---------------------------------------------------------

  /// Formats a value: atom name, or "<p>" for packed values.
  std::string FormatValue(Value v) const;
  /// Formats a path with interpunct separators; "()" for the empty path.
  std::string FormatPath(PathId p) const;

  // --- Variables ----------------------------------------------------------

  /// Interns a variable by kind + name; idempotent per (kind, name).
  VarId InternVar(VarKind kind, std::string_view name);
  VarKind VarKindOf(VarId id) const { return var_kinds_[id]; }
  const std::string& VarName(VarId id) const { return var_names_[id]; }
  /// Fresh variable of the given kind; name derived from `hint`.
  VarId FreshVar(VarKind kind, std::string_view hint);
  size_t num_vars() const { return var_names_.size(); }

  // --- Relation names -----------------------------------------------------

  /// Interns a relation name with the given arity. Re-interning with the
  /// same arity returns the existing id; a different arity is an error.
  Result<RelId> InternRel(std::string_view name, uint32_t arity);
  /// Looks up a relation by name.
  Result<RelId> FindRel(std::string_view name) const;
  const std::string& RelName(RelId id) const { return rel_names_[id]; }
  uint32_t RelArity(RelId id) const { return rel_arities_[id]; }
  /// Fresh relation name with the given arity, derived from `hint`.
  RelId FreshRel(std::string_view hint, uint32_t arity);
  size_t num_rels() const { return rel_names_.size(); }

  // --- Convenience constructors (mostly for tests and examples) -----------

  /// Path of single-character atoms, e.g. "aab" -> a·a·b.
  PathId PathOfChars(std::string_view chars);
  /// Path of whitespace-separated atoms, e.g. "open pay close".
  PathId PathOfWords(std::string_view words);

 private:
  std::string UniqueName(std::string_view hint,
                         const std::unordered_map<std::string, uint32_t>& used,
                         uint32_t* counter);

  std::vector<std::string> atom_names_;
  std::unordered_map<std::string, AtomId> atom_ids_;
  uint32_t fresh_atom_counter_ = 0;

  struct PathKeyHash {
    size_t operator()(const std::vector<Value>& p) const;
  };
  std::vector<std::vector<Value>> path_contents_;
  std::unordered_map<std::vector<Value>, PathId, PathKeyHash> path_ids_;

  std::vector<std::string> var_names_;
  std::vector<VarKind> var_kinds_;
  std::unordered_map<std::string, VarId> var_ids_;  // key: sigil + name
  uint32_t fresh_var_counter_ = 0;

  std::vector<std::string> rel_names_;
  std::vector<uint32_t> rel_arities_;
  std::unordered_map<std::string, RelId> rel_ids_;
  uint32_t fresh_rel_counter_ = 0;
};

}  // namespace seqdl

#endif  // SEQDL_TERM_UNIVERSE_H_
