// Universe: the owning context for all interned symbols of a seqdl session —
// atomic values, paths (hash-consed), variables, and relation names. Every
// seqdl component takes a Universe& explicitly; there is no global state.
//
// Thread safety: all interning and lookup methods may be called from any
// number of threads concurrently (parallel PreparedProgram::Run / Session
// runs intern paths while evaluating). The path store is sharded: each
// shard's hash-cons table is guarded by its own mutex, while resolved paths
// live in append-only block storage published with release stores, so
// GetPath never takes a lock. The (much colder) atom/variable/relation
// tables are guarded by one shared_mutex each (lookups take shared locks,
// interning exclusive ones) and hand out references into std::deque
// storage, which never relocates elements.
#ifndef SEQDL_TERM_UNIVERSE_H_
#define SEQDL_TERM_UNIVERSE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/term/value.h"

namespace seqdl {

/// Identifier of a variable (atomic @x or path $x).
using VarId = uint32_t;

/// Identifier of a relation name.
using RelId = uint32_t;

/// The two kinds of variables of Sequence Datalog (paper §2.2): atomic
/// variables range over atomic values, path variables over paths.
enum class VarKind : uint8_t { kAtomic, kPath };

/// Owning symbol context. Interns atoms, paths, variables and relation
/// names, and generates fresh names for program transformations. Safe for
/// concurrent use from multiple threads (see file comment).
class Universe {
 public:
  Universe();
  ~Universe();

  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  // --- Atoms -------------------------------------------------------------

  /// Interns an atomic value by name; idempotent.
  AtomId InternAtom(std::string_view name);
  /// The printed name of an atom (stable reference; deque storage).
  const std::string& AtomName(AtomId id) const;
  /// A fresh atom whose name starts with `hint` and collides with nothing
  /// interned so far.
  AtomId FreshAtom(std::string_view hint);
  size_t num_atoms() const;

  // --- Paths (hash-consed) ----------------------------------------------

  /// Interns the path consisting of `values`; returns its id. The empty
  /// span maps to kEmptyPath. Thread-safe; equal contents always intern to
  /// the same id regardless of which thread got there first.
  PathId InternPath(std::span<const Value> values);
  /// The values of an interned path. Lock-free: resolves through the
  /// shard's published block storage; the returned span stays valid for
  /// the Universe's lifetime (interned paths are immutable).
  std::span<const Value> GetPath(PathId id) const;
  size_t PathLength(PathId id) const { return GetPath(id).size(); }
  size_t num_paths() const;

  /// Concatenation p1 · p2.
  PathId Concat(PathId p1, PathId p2);
  /// p · v.
  PathId Append(PathId p, Value v);
  /// The contiguous subpath [start, start+len).
  PathId SubPath(PathId p, size_t start, size_t len);
  /// A one-value path.
  PathId SingletonPath(Value v);

  /// True iff the path contains no packed value at any nesting depth.
  bool IsFlatPath(PathId p) const;
  bool IsFlatValue(Value v) const;

  /// Inserts every atom occurring in `p` (at any depth) into `out`.
  void CollectAtoms(PathId p, std::unordered_set<AtomId>* out) const;

  /// All contiguous subpaths of p, including the empty path and p itself.
  std::vector<PathId> AllSubPaths(PathId p);

  // --- Formatting ---------------------------------------------------------

  /// Formats a value: atom name, or "<p>" for packed values.
  std::string FormatValue(Value v) const;
  /// Formats a path with interpunct separators; "()" for the empty path.
  std::string FormatPath(PathId p) const;

  // --- Variables ----------------------------------------------------------

  /// Interns a variable by kind + name; idempotent per (kind, name).
  VarId InternVar(VarKind kind, std::string_view name);
  VarKind VarKindOf(VarId id) const;
  const std::string& VarName(VarId id) const;
  /// Fresh variable of the given kind; name derived from `hint`.
  VarId FreshVar(VarKind kind, std::string_view hint);
  size_t num_vars() const;

  // --- Relation names -----------------------------------------------------

  /// Interns a relation name with the given arity. Re-interning with the
  /// same arity returns the existing id; a different arity is an error.
  Result<RelId> InternRel(std::string_view name, uint32_t arity);
  /// Looks up a relation by name.
  Result<RelId> FindRel(std::string_view name) const;
  const std::string& RelName(RelId id) const;
  uint32_t RelArity(RelId id) const;
  /// Fresh relation name with the given arity, derived from `hint`.
  RelId FreshRel(std::string_view hint, uint32_t arity);
  size_t num_rels() const;

  // --- Convenience constructors (mostly for tests and examples) -----------

  /// Path of single-character atoms, e.g. "aab" -> a·a·b.
  PathId PathOfChars(std::string_view chars);
  /// Path of whitespace-separated atoms, e.g. "open pay close".
  PathId PathOfWords(std::string_view words);

 private:
  // --- Sharded hash-consed path store -------------------------------------
  //
  // A PathId encodes (shard, per-shard index): the low kPathShardBits bits
  // select the shard (chosen by contents hash, so equal paths always land
  // in the same shard), the remaining bits are the append-only index into
  // that shard's storage. Storage is a sequence of geometrically growing
  // blocks (block b holds kPathFirstBlockSize << b entries); blocks are
  // never moved or freed until destruction, and block pointers are
  // published with release stores, so GetPath resolves ids with two loads
  // and no lock. kEmptyPath (id 0 = shard 0, index 0) is pre-registered at
  // construction.
  static constexpr uint32_t kPathShardBits = 4;
  static constexpr uint32_t kPathShards = 1u << kPathShardBits;
  static constexpr uint32_t kPathFirstBlockBits = 10;
  /// Enough blocks that kMaxPathsPerShard is the binding limit: blocks
  /// 0..17 hold 1024 * (2^18 - 1) > 2^27 entries.
  static constexpr uint32_t kPathMaxBlocks = 18;
  /// PathIds must fit Value's 31-bit payload: per-shard index < 2^27.
  static constexpr uint32_t kMaxPathsPerShard = 1u << 27;

  struct PathKeyHash {
    size_t operator()(const std::vector<Value>& p) const;
  };
  struct PathShard {
    std::mutex mu;
    /// Contents -> full PathId (shard already encoded in the low bits).
    std::unordered_map<std::vector<Value>, PathId, PathKeyHash> ids;
    /// Number of paths stored; guarded by mu.
    uint32_t size = 0;
    /// size, republished for lock-free num_paths().
    std::atomic<uint32_t> published_size{0};
    /// blocks[b] holds kPathFirstBlockSize << b entries (release-published).
    std::array<std::atomic<std::vector<Value>*>, kPathMaxBlocks> blocks{};

    ~PathShard();
  };

  static uint32_t PathBlockOf(uint32_t local);
  static uint32_t PathOffsetOf(uint32_t local, uint32_t block);
  static uint32_t PathBlockCapacity(uint32_t block);

  // Unlocked variants; the caller holds the corresponding mutex.
  AtomId InternAtomLocked(std::string_view name);
  VarId InternVarLocked(VarKind kind, std::string_view name);
  Result<RelId> InternRelLocked(std::string_view name, uint32_t arity);

  std::string UniqueName(std::string_view hint,
                         const std::unordered_map<std::string, uint32_t>& used,
                         uint32_t* counter);

  std::unique_ptr<PathShard[]> path_shards_;

  mutable std::shared_mutex atom_mu_;
  std::deque<std::string> atom_names_;
  std::unordered_map<std::string, AtomId> atom_ids_;
  uint32_t fresh_atom_counter_ = 0;

  mutable std::shared_mutex var_mu_;
  std::deque<std::string> var_names_;
  std::deque<VarKind> var_kinds_;
  std::unordered_map<std::string, VarId> var_ids_;  // key: sigil + name
  uint32_t fresh_var_counter_ = 0;

  mutable std::shared_mutex rel_mu_;
  std::deque<std::string> rel_names_;
  std::deque<uint32_t> rel_arities_;
  std::unordered_map<std::string, RelId> rel_ids_;
  uint32_t fresh_rel_counter_ = 0;
};

}  // namespace seqdl

#endif  // SEQDL_TERM_UNIVERSE_H_
