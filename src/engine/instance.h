// Instances: finite relations over paths (paper §2.1/§2.3). An instance is
// a set of facts R(p1, ..., pn); tuples hold interned PathIds.
#ifndef SEQDL_ENGINE_INSTANCE_H_
#define SEQDL_ENGINE_INSTANCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/term/universe.h"

namespace seqdl {

/// A tuple of interned paths. Arity-0 relations hold the empty tuple.
using Tuple = std::vector<PathId>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x51ed270b;
    for (PathId p : t) {
      h ^= p + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

using TupleSet = std::unordered_set<Tuple, TupleHash>;

/// The shared empty tuple set returned for absent relations (never
/// allocated per call; also used by the engine's indexed store).
const TupleSet& EmptyTupleSet();

/// A set of facts over interned relation names.
class Instance {
 public:
  /// Adds a fact; returns true if it was new. The tuple size must equal the
  /// relation's arity (checked by assert).
  bool Add(RelId rel, Tuple t);
  /// Adds a fact; returns the stored tuple (stable address — TupleSet
  /// never invalidates references on insert) and whether it was new.
  std::pair<const Tuple*, bool> Insert(RelId rel, Tuple t);
  /// Bulk counterpart of Add: inserts every tuple of `set` with capacity
  /// reserved up front (one hash per tuple, no per-call map lookup).
  /// Returns the number of new facts.
  size_t AddAll(RelId rel, const TupleSet& set);
  bool Contains(RelId rel, const Tuple& t) const;

  /// Removes a fact; returns true if it was present. A relation whose
  /// last tuple is removed disappears entirely (so operator== keeps
  /// treating "no tuples" and "no relation" as the same instance).
  bool Remove(RelId rel, const Tuple& t);

  /// The tuples of `rel` (the shared EmptyTupleSet() if absent).
  const TupleSet& Tuples(RelId rel) const;
  /// All relations with at least one fact.
  std::vector<RelId> Relations() const;

  size_t NumFacts() const;
  bool Empty() const { return NumFacts() == 0; }

  /// Inserts all facts of `other`; returns number of new facts.
  size_t UnionWith(const Instance& other);
  /// As above, but moves tuples out of `other` (node splicing, no tuple
  /// copies); `other` is left empty.
  size_t UnionWith(Instance&& other);

  /// Restriction of this instance to the given relations.
  Instance Project(const std::vector<RelId>& rels) const;

  /// True iff every path of every fact is flat (no packed values).
  bool IsFlat(const Universe& u) const;

  /// Deterministic multi-line rendering ("R(a·b)." per line, sorted).
  std::string ToString(const Universe& u) const;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.relations_ == b.relations_;
  }
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }

 private:
  std::map<RelId, TupleSet> relations_;
};

/// Parses an instance given as a list of ground facts, e.g.
/// "R(a·b·c). R(eps). S(<a·b>·c)." Non-ground or non-fact input is an error.
Result<Instance> ParseInstance(Universe& u, std::string_view source);

}  // namespace seqdl

#endif  // SEQDL_ENGINE_INSTANCE_H_
