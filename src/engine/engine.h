// Compile-once/run-many evaluation of Sequence Datalog programs.
//
// Engine::Compile validates (safety, stratification) and plans a program
// exactly once, producing an immutable PreparedProgram. The prepared
// program can then be run against any number of input instances over the
// same Universe:
//
//   SEQDL_ASSIGN_OR_RETURN(PreparedProgram prog,
//                          Engine::Compile(u, std::move(program)));
//   SEQDL_ASSIGN_OR_RETURN(Instance out1, prog.Run(input1));
//   SEQDL_ASSIGN_OR_RETURN(Instance out2, prog.Run(input2));
//
// Execution uses stratified semi-naive fixpoint iteration (paper §2.3)
// over an indexed relation store: scans whose key position is ground under
// the current valuation become hash probes instead of full relation scans
// (see plan.h / index.h). Since Sequence Datalog programs need not
// terminate (Example 2.3), Run enforces budgets and reports
// kResourceExhausted when they are exceeded; a cancellation callback in
// RunOptions can stop a run early with kCancelled.
//
// Execution runs on a layered store (index.h): an immutable, possibly
// shared BaseStore of input facts underneath, a private IDB overlay on
// top. Run(input) builds a throwaway base per call; the Database/Session
// API (database.h) shares one pre-indexed base across any number of
// concurrent runs. The legacy one-shot Eval()/EvalQuery() entry points in
// eval.h are thin wrappers over this API.
#ifndef SEQDL_ENGINE_ENGINE_H_
#define SEQDL_ENGINE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/engine/instance.h"
#include "src/engine/plan.h"
#include "src/engine/stats.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

class BaseStore;
enum class SegmentKind : uint8_t;
class Session;
class ViewManager;

namespace internal {
class Executor;
}  // namespace internal

/// Derivation-event counts per derived tuple, keyed by relation: how many
/// times each tuple was produced by a rule firing (across all rules and
/// rounds). Collected when RunOptions::support is set under semi-naive
/// evaluation (naive runs skip counting — their re-evaluation rounds
/// re-enumerate every firing and would inflate counts without bound); the
/// materialized-view subsystem (view/view.h) stores them per view
/// snapshot to drive counting-based delete/re-derive (DRed) on
/// retraction: a tuple whose count drops to zero has no surviving counted
/// derivation and is over-deleted, then rescued iff a re-derivation check
/// finds another proof. Counting is *canonical* — each firing is counted
/// exactly once even when several of its body atoms sit in the same delta
/// round (the firing is attributed to its smallest delta-matched body
/// literal) — so stored counts never exceed the number of enumerable
/// firings. The deletion phase decrements each dead firing at least once,
/// which makes the pair sound: counts can only reach zero at or before
/// the true support does, and an early zero merely costs a re-derivation
/// check, never a wrong deletion.
using SupportCounts = std::map<RelId, std::unordered_map<Tuple, uint32_t, TupleHash>>;

/// Stored-support lookup for RunDelta's deletion phase: returns the
/// support count the view recorded for (rel, tuple), or 0 when unknown —
/// the executor treats unknown as 1 (delete on first decrement and let
/// re-derivation decide), the classic DRed behaviour.
using SupportLookup = std::function<uint32_t(RelId, const Tuple&)>;

/// Options fixed at compilation time.
struct CompileOptions {
  /// Validate safety/stratification before planning.
  bool validate = true;
  /// Greedily reorder positive body scans so each joins on already-bound
  /// variables where possible; false = scan in body order.
  bool reorder_scans = true;
  /// Measured store statistics (Database::Stats(), BaseStore::Stats(), or
  /// ComputeInstanceStats) ranking candidate access paths and the scan
  /// order by expected bucket size — see plan.h. nullptr = the legacy
  /// first-ground-argument heuristic. Only read during the Compile call;
  /// statistics never change results, only cost (the differential harness
  /// enforces this).
  const StoreStats* stats = nullptr;
};

/// Options chosen per run.
struct RunOptions {
  /// Maximum number of derived facts before giving up.
  size_t max_facts = 5'000'000;
  /// Maximum number of fixpoint rounds across all strata.
  size_t max_iterations = 1'000'000;
  /// Maximum length of any derived path.
  size_t max_path_length = 1'000'000;
  /// Use semi-naive (delta) iteration; false = naive re-evaluation.
  bool seminaive = true;
  /// Probe per-(relation, column) hash indexes for scans whose key
  /// position is ground; false = always full scans (ablation).
  bool use_index = true;
  /// Semi-naive delta sets with at least this many tuples are indexed on
  /// first keyed probe instead of scanned linearly (see
  /// EvalStats::delta_index_probes). 0 = always index; SIZE_MAX = never.
  size_t delta_index_threshold = 32;
  /// Cancellation/budget callback, polled at every fixpoint round and
  /// periodically between rule firings. Return true to cancel the run;
  /// Run then fails with kCancelled. Leave empty for no callback.
  std::function<bool()> cancel;
  /// Measure the run's derived facts into EvalStats::derived_stats (one
  /// O(derived) pass after the fixpoint). Session::Run additionally feeds
  /// the measurement back into its Database's statistics accumulator, so
  /// later Database::Stats()-driven compiles see what runs actually
  /// derived. Off by default to keep the hot path free of the pass.
  bool collect_derived_stats = false;
  /// When non-null, every rule firing increments (*support)[rel][tuple]
  /// for the head tuple it produced — the counting-based support the
  /// materialized-view subsystem records per derived tuple (see
  /// SupportCounts above; counting is canonical, once per firing, and
  /// only happens under seminaive — naive re-evaluation rounds would
  /// re-count every firing per round). The map is the caller's; the run
  /// only ever increments, so a caller can seed it with carried-over
  /// counts. Null (the default) keeps the derivation hot path free of
  /// the upkeep.
  SupportCounts* support = nullptr;
};

/// Per-stratum execution counters.
struct StratumStats {
  size_t rounds = 0;
  size_t rule_firings = 0;
  size_t derived_facts = 0;
};

/// Execution statistics, filled by PreparedProgram::Run (and the legacy
/// Eval wrapper).
struct EvalStats {
  size_t derived_facts = 0;
  size_t rounds = 0;
  size_t rule_firings = 0;
  /// Scans answered through a whole-value (relation, column) index probe
  /// (the argument position was fully ground).
  size_t index_probes = 0;
  /// Scans answered through a first-value index probe (only a leading
  /// prefix of the argument was ground).
  size_t prefix_probes = 0;
  /// Scans answered through a last-value index probe (only a trailing
  /// suffix of the argument was ground, e.g. `$x ++ a`).
  size_t suffix_probes = 0;
  /// Scans that fell back to a full relation scan (no ground key position,
  /// an empty ground prefix/suffix, or use_index = false).
  size_t full_scans = 0;
  /// Scans over per-round delta sets (semi-naive iteration).
  size_t delta_scans = 0;
  /// Delta scans answered through a per-round delta index (the delta held
  /// at least RunOptions::delta_index_threshold tuples and the step had a
  /// ground key). Subset of delta_scans.
  size_t delta_index_probes = 0;
  /// Net changed facts of the delta segments (additions plus retractions)
  /// that seeded a RunDelta's first delta pass (0 on full runs).
  size_t delta_seed_facts = 0;
  /// Strata a RunDelta maintained incrementally (delta passes over the
  /// stored view, plus DRed deletion on shrink epochs) vs recomputed
  /// wholesale (negation over a changed input). Both 0 on full runs.
  size_t strata_delta_maintained = 0;
  size_t strata_recomputed = 0;
  /// DRed deletion-phase counters (0 on full runs and growth-only
  /// deltas): support decrements applied, stored tuples whose support hit
  /// zero and were provisionally deleted, and how many of those the
  /// re-derivation pass rescued.
  size_t dred_decrements = 0;
  size_t dred_over_deleted = 0;
  size_t dred_re_derived = 0;
  /// Wall time Engine::Compile spent validating + planning the program.
  double compile_seconds = 0;
  /// Wall time of this run.
  double run_seconds = 0;
  /// One entry per stratum, in program order.
  std::vector<StratumStats> per_stratum;
  /// The planner's access-path decision per scan step, one line each
  /// ("stratum 0 rule 0 step 1: scan R: whole-value key col 1, est 1.0
  /// [stats]"), recorded at compile time and copied into every run's
  /// stats. Empty when the run was given no stats out-param.
  std::vector<std::string> plan_decisions;
  /// Bucket statistics of the facts this run derived, measured after the
  /// fixpoint when RunOptions::collect_derived_stats is set (empty
  /// otherwise).
  StoreStats derived_stats;
};

/// A validated, planned program bound to a Universe. Move-only (plans
/// point into the owned Program). Create via Engine::Compile.
class PreparedProgram {
 public:
  PreparedProgram(PreparedProgram&&) = default;
  PreparedProgram& operator=(PreparedProgram&&) = default;
  PreparedProgram(const PreparedProgram&) = delete;
  PreparedProgram& operator=(const PreparedProgram&) = delete;

  /// Evaluates on `input`; returns input plus all derived IDB facts.
  /// `input` must be an instance over the Universe the program was
  /// compiled against. On success fills `*stats` (if non-null), including
  /// the compile time recorded by Engine::Compile. Runs are independent —
  /// each builds a throwaway indexed base over `input` plus a private IDB
  /// overlay — and thread-safe: the shared Universe interns with
  /// synchronization, so one PreparedProgram may run from any number of
  /// threads concurrently. To index an input once and reuse it across
  /// runs, see Database/Session in database.h.
  Result<Instance> Run(const Instance& input, const RunOptions& opts = {},
                       EvalStats* stats = nullptr) const;

  /// Runs and projects onto a single output relation (the paper's notion
  /// of a program computing a query from Γ to S).
  Result<Instance> RunQuery(const Instance& input, RelId output,
                            const RunOptions& opts = {},
                            EvalStats* stats = nullptr) const;

  /// Result of RunDelta: the complete derived IDB at the post-update
  /// epoch, which strata could not be maintained incrementally, and the
  /// DRed deletion bookkeeping the view subsystem folds into its stored
  /// support counts.
  struct DeltaRun {
    Instance idb;
    /// Indices (program order) of strata RunDelta recomputed wholesale —
    /// a negated body relation changed (gained or lost facts). Everything
    /// else was maintained by delta passes over the stored view; positive
    /// shrinks are handled in place by DRed deletion, not by recompute.
    std::vector<size_t> recomputed_strata;
    /// Support decrements the deletion phase applied, per stored tuple
    /// (empty on growth-only deltas). The view subsystem combines these
    /// with the carried-over counts: new = old + fresh - decrements,
    /// saturating, floored at 1 for tuples present in `idb`.
    SupportCounts decrements;
  };

  /// Incremental maintenance: given the stored derived IDB `view` of an
  /// earlier epoch and the segment stack that changed since, computes the
  /// derived IDB of the current epoch by semi-naive delta evaluation of
  /// the net changes instead of a full fixpoint. `segments` (with
  /// `kinds`, parallel; empty = all fact segments) is the complete
  /// current stack; the first `base_prefix` members are the ones `view`
  /// was computed over (segments publish in stamp order, so a view's
  /// covered base is always a prefix); `view` must be exactly the IDB a
  /// full run over that prefix derives, and `stored_support` (may be
  /// null) its recorded support counts. The result's `idb` is
  /// byte-identical to RunOnStack over the full stack (the differential
  /// harness enforces this at every epoch, across compaction).
  ///
  /// The suffix's net effect is computed fact by fact (a fact appended
  /// then retracted inside the window nets out): additions seed delta
  /// passes, retractions seed DRed deletion. Per stratum, in order: when
  /// no negated body relation changed, the stratum is *maintained* — its
  /// stored view facts are adopted wholesale, then three phases run. The
  /// deletion phase decrements the stored support of every derivation
  /// consuming a retracted fact (retracted facts stay enumerable as
  /// ghosts so joins between dead facts are still counted), provisionally
  /// deletes tuples whose support reaches zero, and cascades until no
  /// deletion set remains. The re-derivation phase then rescues deleted
  /// tuples (and retracted EDB facts of this stratum's head relations)
  /// that still have a proof, to a fixpoint. The insertion phase is the
  /// classic delta pass over the additions. A stratum reading a changed
  /// relation through negation is instead *recomputed* from scratch
  /// against the already-updated lower strata, and its diff against the
  /// stored facts joins the change sets cascading into later strata.
  /// Appended EDB facts that duplicate stored view facts are dropped from
  /// the new view (derived overlays never shadow visible base facts),
  /// matching what a cold run would produce.
  Result<DeltaRun> RunDelta(std::span<const BaseStore* const> segments,
                            std::span<const SegmentKind> kinds,
                            size_t base_prefix, const Instance& view,
                            const SupportLookup& stored_support,
                            const RunOptions& opts = {},
                            EvalStats* stats = nullptr) const;

  const Program& program() const { return *program_; }
  Universe& universe() const { return *universe_; }
  /// Wall time spent in Engine::Compile for this program.
  double compile_seconds() const { return compile_seconds_; }

  /// Human-readable rendering of the compiled plan: per stratum and rule,
  /// each scheduled step with its chosen access path (whole/first/last
  /// -value key column or full scan), the planner's selectivity estimate
  /// when the program was compiled with statistics, and which scan steps
  /// re-run against semi-naive deltas. `seqdl run --explain` prints this.
  std::string ExplainPlan() const;

 private:
  friend class Engine;
  friend class Session;
  friend class ViewManager;
  friend class internal::Executor;

  struct CompiledStratum {
    std::vector<RulePlan> plans;
    /// Delta-first variants, parallel to `plans`: per rule, one plan per
    /// positive body literal with that literal's scan scheduled as step 0
    /// (PlannerOptions::first_lit), keyed by literal index. RunDelta's
    /// maintenance passes execute the variant whose forced scan is the
    /// changed one, so restricting it to the changed set makes the whole
    /// rule application O(|changed|) probes instead of an outer full scan.
    std::vector<std::map<size_t, RulePlan>> delta_plans;
    /// Head-bound variants, parallel to `plans`: each rule planned as if
    /// its head variables were already bound (PlannerOptions::head_bound).
    /// DRed's re-derivation check matches the candidate tuple against the
    /// head and then runs the body under that valuation — these plans key
    /// the body scans on the head's bindings, so a check costs a handful
    /// of index probes instead of opening with a full relation scan.
    std::vector<RulePlan> check_plans;
  };

  /// Evaluates over a stack of base segments (shared, never mutated —
  /// the epoch-pinned EDB of a Session) and returns only the derived IDB
  /// overlay. `kinds` marks each segment as facts or tombstones (parallel
  /// to `segments`; empty = all facts): tombstoned facts are invisible —
  /// enumeration and membership respect the newest-occurrence rule (see
  /// LayeredStore in index.h). The engine of Session::Run and of Run
  /// above (which wraps `input` in a throwaway single-segment base and
  /// unions the result back).
  Result<Instance> RunOnStack(std::span<const BaseStore* const> segments,
                              std::span<const SegmentKind> kinds,
                              const RunOptions& opts, EvalStats* stats) const;
  /// All-fact-segments convenience.
  Result<Instance> RunOnSegments(std::span<const BaseStore* const> segments,
                                 const RunOptions& opts,
                                 EvalStats* stats) const;
  /// Single-segment convenience.
  Result<Instance> RunOnBase(const BaseStore& base, const RunOptions& opts,
                             EvalStats* stats) const;

  PreparedProgram(Universe& u, std::shared_ptr<const Program> p)
      : universe_(&u), program_(std::move(p)) {}

  Universe* universe_;
  /// Owned for Compile(); non-owning (aliasing, null deleter) for
  /// CompileBorrowed(). Rule plans point into this program.
  std::shared_ptr<const Program> program_;
  std::vector<CompiledStratum> strata_;
  double compile_seconds_ = 0;
  /// One line per scan step, precomputed by Compile and copied into
  /// EvalStats::plan_decisions on stats-carrying runs.
  std::vector<std::string> plan_decisions_;
};

/// Stateless compiler front end.
class Engine {
 public:
  /// Validates and plans `p` against `u`. The returned PreparedProgram
  /// keeps a reference to `u`, which must outlive it.
  static Result<PreparedProgram> Compile(Universe& u, Program p,
                                         const CompileOptions& opts = {});

  /// As Compile, but borrows `p` instead of taking ownership: the caller
  /// must keep `p` alive and unchanged for the PreparedProgram's
  /// lifetime. Avoids copying the program AST when it already outlives
  /// the prepared program (the one-shot Eval wrapper, long-lived program
  /// registries).
  static Result<PreparedProgram> CompileBorrowed(
      Universe& u, const Program& p, const CompileOptions& opts = {});

 private:
  static Result<PreparedProgram> CompileShared(
      Universe& u, std::shared_ptr<const Program> p,
      const CompileOptions& opts);
};

}  // namespace seqdl

#endif  // SEQDL_ENGINE_ENGINE_H_
