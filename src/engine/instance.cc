#include "src/engine/instance.h"

#include <algorithm>

#include "src/syntax/ast.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"

namespace seqdl {

const TupleSet& EmptyTupleSet() {
  static const TupleSet kEmpty;
  return kEmpty;
}

bool Instance::Add(RelId rel, Tuple t) {
  return relations_[rel].insert(std::move(t)).second;
}

std::pair<const Tuple*, bool> Instance::Insert(RelId rel, Tuple t) {
  auto [it, is_new] = relations_[rel].insert(std::move(t));
  return {&*it, is_new};
}

size_t Instance::AddAll(RelId rel, const TupleSet& set) {
  if (set.empty()) return 0;
  TupleSet& dst = relations_[rel];
  if (dst.empty()) {
    // Bulk-install into an empty relation: copy the whole set (bucket
    // structure and cached hashes included) instead of rehashing and
    // re-probing tuple by tuple — the adopt path of delta refreshes
    // installs entire stored views this way.
    dst = set;
    return set.size();
  }
  dst.reserve(dst.size() + set.size());
  size_t added = 0;
  for (const Tuple& t : set) {
    if (dst.insert(t).second) ++added;
  }
  return added;
}

bool Instance::Contains(RelId rel, const Tuple& t) const {
  auto it = relations_.find(rel);
  return it != relations_.end() && it->second.count(t) > 0;
}

bool Instance::Remove(RelId rel, const Tuple& t) {
  auto it = relations_.find(rel);
  if (it == relations_.end()) return false;
  if (it->second.erase(t) == 0) return false;
  if (it->second.empty()) relations_.erase(it);
  return true;
}

const TupleSet& Instance::Tuples(RelId rel) const {
  auto it = relations_.find(rel);
  return it != relations_.end() ? it->second : EmptyTupleSet();
}

std::vector<RelId> Instance::Relations() const {
  std::vector<RelId> out;
  for (const auto& [rel, tuples] : relations_) {
    if (!tuples.empty()) out.push_back(rel);
  }
  return out;
}

size_t Instance::NumFacts() const {
  size_t n = 0;
  for (const auto& [_, tuples] : relations_) n += tuples.size();
  return n;
}

size_t Instance::UnionWith(const Instance& other) {
  size_t added = 0;
  for (const auto& [rel, tuples] : other.relations_) {
    for (const Tuple& t : tuples) {
      if (relations_[rel].insert(t).second) ++added;
    }
  }
  return added;
}

size_t Instance::UnionWith(Instance&& other) {
  size_t added = 0;
  for (auto& [rel, tuples] : other.relations_) {
    TupleSet& dst = relations_[rel];
    if (dst.empty()) {
      added += tuples.size();
      dst = std::move(tuples);
    } else {
      size_t before = dst.size();
      dst.merge(tuples);  // splices nodes; duplicates stay behind
      added += dst.size() - before;
    }
  }
  other.relations_.clear();
  return added;
}

Instance Instance::Project(const std::vector<RelId>& rels) const {
  Instance out;
  for (RelId rel : rels) {
    auto it = relations_.find(rel);
    if (it != relations_.end()) out.relations_[rel] = it->second;
  }
  return out;
}

bool Instance::IsFlat(const Universe& u) const {
  for (const auto& [_, tuples] : relations_) {
    for (const Tuple& t : tuples) {
      for (PathId p : t) {
        if (!u.IsFlatPath(p)) return false;
      }
    }
  }
  return true;
}

std::string Instance::ToString(const Universe& u) const {
  std::vector<std::string> lines;
  for (const auto& [rel, tuples] : relations_) {
    for (const Tuple& t : tuples) {
      std::string line = u.RelName(rel);
      if (!t.empty()) {
        line += "(";
        for (size_t i = 0; i < t.size(); ++i) {
          if (i > 0) line += ", ";
          line += u.FormatPath(t[i]);
        }
        line += ")";
      }
      line += ".";
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

Result<Instance> ParseInstance(Universe& u, std::string_view source) {
  SEQDL_ASSIGN_OR_RETURN(Program p, ParseProgram(u, source));
  Instance inst;
  for (const Rule* r : p.AllRules()) {
    if (!r->body.empty()) {
      return Status::InvalidArgument("instance contains a non-fact rule: " +
                                     FormatRule(u, *r));
    }
    Tuple t;
    for (const PathExpr& e : r->head.args) {
      SEQDL_ASSIGN_OR_RETURN(PathId path, EvalGroundExpr(u, e));
      t.push_back(path);
    }
    inst.Add(r->head.rel, std::move(t));
  }
  return inst;
}

}  // namespace seqdl
