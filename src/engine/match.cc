#include "src/engine/match.h"

#include <cassert>
#include <vector>

namespace seqdl {

Result<PathId> EvalExpr(Universe& u, const PathExpr& e, const Valuation& v) {
  std::vector<Value> values;
  for (const ExprItem& it : e.items) {
    switch (it.kind) {
      case ExprItem::Kind::kConst:
        values.push_back(it.atom);
        break;
      case ExprItem::Kind::kAtomVar: {
        if (!v.IsBound(it.var)) {
          return Status::InvalidArgument("EvalExpr: unbound atomic variable @" +
                                         u.VarName(it.var));
        }
        std::span<const Value> p = u.GetPath(v.Get(it.var));
        assert(p.size() == 1 && p[0].is_atom());
        values.push_back(p[0]);
        break;
      }
      case ExprItem::Kind::kPathVar: {
        if (!v.IsBound(it.var)) {
          return Status::InvalidArgument("EvalExpr: unbound path variable $" +
                                         u.VarName(it.var));
        }
        std::span<const Value> p = u.GetPath(v.Get(it.var));
        values.insert(values.end(), p.begin(), p.end());
        break;
      }
      case ExprItem::Kind::kPack: {
        SEQDL_ASSIGN_OR_RETURN(PathId inner, EvalExpr(u, *it.pack, v));
        values.push_back(Value::Packed(inner));
        break;
      }
    }
  }
  return u.InternPath(values);
}

bool AllVarsBound(const PathExpr& e, const Valuation& v) {
  for (VarId var : VarSet(e)) {
    if (!v.IsBound(var)) return false;
  }
  return true;
}

namespace {

// Backtracking matcher. Items are matched left to right against
// path[pos..]; `next` is the continuation run when the current item list is
// exhausted (it must verify pos reached the end of its region).
class Matcher {
 public:
  explicit Matcher(Universe& u) : u_(u) {}

  // Returns false iff enumeration was stopped by the callback.
  bool Match(const std::vector<ExprItem>& items, size_t item_idx,
             std::span<const Value> path, size_t pos, Valuation& v,
             const std::function<bool(Valuation&)>& next) {
    if (item_idx == items.size()) {
      if (pos != path.size()) return true;  // dead end, keep enumerating
      return next(v);
    }
    const ExprItem& it = items[item_idx];
    switch (it.kind) {
      case ExprItem::Kind::kConst: {
        if (pos < path.size() && path[pos] == it.atom) {
          return Match(items, item_idx + 1, path, pos + 1, v, next);
        }
        return true;
      }
      case ExprItem::Kind::kAtomVar: {
        if (pos >= path.size()) return true;
        Value val = path[pos];
        if (!val.is_atom()) return true;  // atomic vars take atomic values
        if (v.IsBound(it.var)) {
          if (v.Get(it.var) != u_.SingletonPath(val)) return true;
          return Match(items, item_idx + 1, path, pos + 1, v, next);
        }
        v.Bind(it.var, u_.SingletonPath(val));
        bool cont = Match(items, item_idx + 1, path, pos + 1, v, next);
        v.Unbind(it.var);
        return cont;
      }
      case ExprItem::Kind::kPathVar: {
        if (v.IsBound(it.var)) {
          std::span<const Value> bound = u_.GetPath(v.Get(it.var));
          if (pos + bound.size() > path.size()) return true;
          for (size_t i = 0; i < bound.size(); ++i) {
            if (path[pos + i] != bound[i]) return true;
          }
          return Match(items, item_idx + 1, path, pos + bound.size(), v, next);
        }
        // Try all split lengths, shortest first. An upper bound comes from
        // the minimum length still needed by the remaining items.
        size_t remaining = path.size() - pos;
        size_t reserve = MinRemainingLength(items, item_idx + 1, v);
        if (reserve > remaining) return true;
        for (size_t len = 0; len <= remaining - reserve; ++len) {
          PathId sub = u_.InternPath(path.subspan(pos, len));
          v.Bind(it.var, sub);
          bool cont = Match(items, item_idx + 1, path, pos + len, v, next);
          v.Unbind(it.var);
          if (!cont) return false;
        }
        return true;
      }
      case ExprItem::Kind::kPack: {
        if (pos >= path.size() || !path[pos].is_packed()) return true;
        std::span<const Value> inner = u_.GetPath(path[pos].packed_path());
        // Match the packed subexpression against the packed path, then
        // continue with the remaining outer items.
        auto continue_outer = [&](Valuation& v2) {
          return Match(items, item_idx + 1, path, pos + 1, v2, next);
        };
        return Match(it.pack->items, 0, inner, 0, v, continue_outer);
      }
    }
    return true;
  }

 private:
  // Minimal number of path values the items from `idx` on must consume.
  size_t MinRemainingLength(const std::vector<ExprItem>& items, size_t idx,
                            const Valuation& v) const {
    size_t n = 0;
    for (size_t i = idx; i < items.size(); ++i) {
      const ExprItem& it = items[i];
      switch (it.kind) {
        case ExprItem::Kind::kConst:
        case ExprItem::Kind::kAtomVar:
        case ExprItem::Kind::kPack:
          ++n;
          break;
        case ExprItem::Kind::kPathVar:
          if (v.IsBound(it.var)) n += u_.PathLength(v.Get(it.var));
          break;
      }
    }
    return n;
  }

  Universe& u_;
};

}  // namespace

bool MatchExpr(Universe& u, const PathExpr& e, PathId p, Valuation& base,
               const std::function<bool(Valuation&)>& cb) {
  Matcher m(u);
  std::span<const Value> path = u.GetPath(p);
  return m.Match(e.items, 0, path, 0, base, cb);
}

namespace {
bool MatchArgsFrom(Universe& u, const std::vector<PathExpr>& args,
                   const std::vector<PathId>& tuple, size_t idx,
                   Valuation& v, const std::function<bool(Valuation&)>& cb) {
  if (idx == args.size()) return cb(v);
  auto next = [&](Valuation& v2) {
    return MatchArgsFrom(u, args, tuple, idx + 1, v2, cb);
  };
  return MatchExpr(u, args[idx], tuple[idx], v, next);
}
}  // namespace

bool MatchArgs(Universe& u, const std::vector<PathExpr>& args,
               const std::vector<PathId>& tuple, Valuation& base,
               const std::function<bool(Valuation&)>& cb) {
  assert(args.size() == tuple.size());
  return MatchArgsFrom(u, args, tuple, 0, base, cb);
}

}  // namespace seqdl
