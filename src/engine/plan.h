// Rule planning: turning a rule body into an executable step sequence.
//
// A plan schedules the positive predicate scans first (optionally greedily
// reordered so each scan joins on already-bound variables), then the
// positive equations in a safety-respecting order, then the negated
// literals (whose variables are all bound by that point). Planning also
// picks, per scan, the *access path* the executor uses instead of a full
// relation scan (see index.h): a whole-value index probe on a fully ground
// argument position, or a first/last-value probe on an argument with a
// ground prefix/suffix run.
//
// Two cost models choose among the candidates:
//
//   * the legacy heuristic (PlannerOptions::stats == nullptr): first fully
//     ground argument wins, else the longest ground prefix/suffix run;
//     scans ordered by most shared already-bound variables;
//   * the selectivity-aware model (stats != nullptr): every candidate is
//     ranked by its *measured expected bucket size* (StoreStats, stats.h)
//     — a whole-value probe on a near-constant column loses to a
//     first-value probe on a discriminating one, and scans are ordered by
//     cheapest estimated access. PlanStep::est_cost records the estimate.
//
// Both models pick among sound access paths only, so they differ in cost,
// never in results (tests/differential_test.cc enforces this).
//
// Planning happens once per rule at Engine::Compile time; plans are
// immutable afterwards and shared by every PreparedProgram::Run.
#ifndef SEQDL_ENGINE_PLAN_H_
#define SEQDL_ENGINE_PLAN_H_

#include <cstddef>
#include <vector>

#include "src/base/status.h"
#include "src/engine/stats.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// One scheduled step of a rule body.
struct PlanStep {
  enum class Kind : uint8_t { kScan, kEq, kNegPred, kNegEq };

  Kind kind = Kind::kScan;
  /// Index of the literal in the rule body this step executes.
  size_t lit_idx = 0;
  /// kScan only: argument position whose variables are all bound before
  /// this step runs, so the argument evaluates to a ground path usable as
  /// a whole-value index key. -1 when no position is fully ground.
  int index_arg = -1;
  /// kScan only, used when index_arg is -1: argument position with a
  /// non-empty leading run of ground items. At runtime the prefix
  /// evaluates to a ground path; if non-empty, its first value keys a
  /// first-value index probe (a matching tuple must start with it). -1
  /// when no argument has a ground prefix.
  int prefix_arg = -1;
  /// The ground leading items of args[prefix_arg], precomputed so the
  /// executor evaluates them without rebuilding the expression.
  PathExpr prefix_expr;
  /// kScan only, used when index_arg and prefix_arg are both -1: argument
  /// position with a non-empty trailing run of ground items (the
  /// suffix-ground shape `$x ++ a`). At runtime the suffix evaluates to a
  /// ground path; if non-empty, its last value keys a last-value index
  /// probe (a matching tuple must end with it). -1 when no argument has a
  /// ground suffix either (full relation scan).
  int suffix_arg = -1;
  /// The ground trailing items of args[suffix_arg].
  PathExpr suffix_expr;
  /// kScan only: the planner's estimate of how many tuples this step
  /// enumerates per probe (mean bucket size of the chosen index family,
  /// or the relation size for a full scan). Negative when the plan was
  /// built without statistics.
  double est_cost = -1.0;
  /// kScan only: true when measured statistics (not the legacy heuristic
  /// or an unknown-relation prior) selected this access path.
  bool stats_chosen = false;
};

/// A rule with a precomputed evaluation order.
struct RulePlan {
  /// The planned rule. Not owned; points into the Program held by the
  /// PreparedProgram (or whatever outlives the plan).
  const Rule* rule = nullptr;
  std::vector<PlanStep> steps;
  /// Indices into `steps` of scans over same-stratum IDB relations,
  /// filled in by the compiler (PlanRule leaves it empty).
  std::vector<size_t> recursive_scan_steps;
};

/// How PlanRule chooses access paths and scan order.
struct PlannerOptions {
  /// Greedily reorder positive body scans; false = keep body order.
  bool reorder_scans = true;
  /// Measured store statistics ranking candidate access paths and scan
  /// order by expected bucket size. nullptr = legacy heuristics (first
  /// fully ground argument wins, longest prefix/suffix run, most shared
  /// bound variables). Only read during the PlanRule call.
  const StoreStats* stats = nullptr;
  /// When >= 0, the scan of this body literal is scheduled first (the
  /// remaining scans are ordered as usual). Delta evaluation compiles one
  /// such variant per positive literal: restricting a scan to a small
  /// changed set only pays off when that scan is the outermost loop —
  /// anywhere deeper, the steps before it still enumerate the full store.
  int first_lit = -1;
  /// Plan as if the head's variables were already bound when the body
  /// starts. Re-derivation checks (DRed) match a candidate tuple against
  /// the head first and then run the body under that valuation — with
  /// the head variables seeded, the planner keys the body scans on them
  /// (index/prefix probes) instead of opening with a full relation scan.
  bool head_bound = false;
};

/// Plans a single rule. Fails with kInvalidArgument if the rule is unsafe
/// (equations cannot be ordered, a negated literal or the head would see
/// an unbound variable).
Result<RulePlan> PlanRule(const Universe& u, const Rule& r,
                          const PlannerOptions& opts);

/// Legacy-heuristic convenience overload (no statistics).
Result<RulePlan> PlanRule(const Universe& u, const Rule& r,
                          bool reorder_scans);

}  // namespace seqdl

#endif  // SEQDL_ENGINE_PLAN_H_
