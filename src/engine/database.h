// Database/Session: a long-lived, versioned EDB serving concurrent runs.
//
// The EDB is an append-log of immutable *segments*, one per committed
// ingest batch. The segment list is published atomically under an
// *epoch* counter (MVCC): Database::Append (or a batching Writer's
// Commit) never mutates existing segments — it builds a new BaseStore
// over the freshly ingested facts, dedupes them against the current
// stack, and publishes segments+1 at epoch+1. Snapshot()/OpenSession()
// pins the segment list of the current epoch by shared ownership, so a
// session opened at epoch k keeps reading exactly epoch k's facts —
// byte-identical results before, during, and after any number of later
// commits or compactions — while writers race ahead
// (single-writer/multi-reader, TSan-enforced):
//
//   SEQDL_ASSIGN_OR_RETURN(Database db, Database::Open(u, std::move(edb)));
//   SEQDL_ASSIGN_OR_RETURN(PreparedProgram prog, Engine::Compile(u, p));
//   Session at_k = db.Snapshot();                        // pins epoch k
//   SEQDL_ASSIGN_OR_RETURN(uint64_t e, db.Append(std::move(more_facts)));
//   Session at_k1 = db.Snapshot();                       // sees the append
//   SEQDL_ASSIGN_OR_RETURN(Instance before, at_k.Run(prog));   // epoch k
//   SEQDL_ASSIGN_OR_RETURN(Instance after, at_k1.Run(prog));   // epoch k+1
//
// Per-segment whole/first/last-value indexes and StoreStats build exactly
// once via the BaseStore call_once machinery and are merged lazily at
// query/Stats() time. Compact() folds the stack into one merged segment
// (same facts, same epoch — compaction is invisible to semantics); open
// sessions keep their pinned segments alive via shared_ptr, so compaction
// under open sessions is a semantic no-op for them and the retired
// segments are freed when the last pinned session goes away.
// OpenOptions::auto_compact_segments makes Append fold the stack
// automatically once it grows past a threshold, LSM-style.
//
// Retract() publishes the inverse of Append as the same kind of immutable
// segment: a *tombstone* segment whose tuples shadow matching facts in
// every older segment — a fact is visible iff the newest segment holding
// it is a fact segment (SegmentKind, index.h). Commits maintain a *flip
// invariant*: Append only publishes facts not currently visible, Retract
// only tombstones facts that are, so each fact's occurrences in stack
// order alternate fact/tombstone/fact/… and visibility is decided by the
// newest occurrence. Sessions pinned before a retraction keep seeing the
// fact (MVCC as usual); Compact() applies and folds tombstones away — the
// merged stack holds exactly the visible facts and zero tombstone
// segments, and SegmentSet::shrink_floor records that views older than
// the folded tombstones can no longer be delta-maintained.
//
// Thread-safety contract: one writer at a time (Append/Commit/Compact
// serialize on an internal writer mutex), any number of concurrent
// readers; the published segment list is swapped under a mutex and pinned
// by shared_ptr, all per-run mutable state is private to the run, and the
// Universe interns with synchronization. Sessions may outlive epochs but
// not the Database; the Database must not outlive the Universe.
//
// Unlike PreparedProgram::Run (input plus derived facts), Session::Run
// returns only the facts the program derived — the EDB is shared and
// usually large, so callers materialize session.edb() + derived only when
// they actually need the union.
#ifndef SEQDL_ENGINE_DATABASE_H_
#define SEQDL_ENGINE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/engine/index.h"
#include "src/engine/instance.h"
#include "src/engine/stats.h"
#include "src/storage/storage.h"
#include "src/term/universe.h"

namespace seqdl {

class Session;
class ViewManager;
class Writer;

/// A long-lived, versioned EDB: an epoch-stamped stack of immutable
/// BaseStore segments shared by every session. Move-only; must outlive
/// all sessions and writers opened from it.
class Database {
 public:
  struct OpenOptions {
    /// Build every (relation, column) index of every segment at
    /// Open/Append/Compact time instead of on first probe. Front-loads
    /// the full indexing cost; with the default lazy build, each column's
    /// indexes build on the first query that probes them (still exactly
    /// once per segment across all sessions and threads).
    bool eager_indexes = false;
    /// Append folds the segment stack into one merged segment once it
    /// holds more than this many segments (0 = compact manually via
    /// Compact()). Keeps read amplification bounded under sustained
    /// ingest, LSM-style.
    size_t auto_compact_segments = 0;
    /// Append also compacts once the facts outside the first (largest)
    /// segment exceed this fraction of all facts — the size-ratio
    /// trigger. >= 1.0 disables the ratio trigger.
    double auto_compact_tail_ratio = 1.0;
    /// Durability. Empty (the default) keeps the database purely in
    /// memory. Non-empty names a data directory (created if absent):
    /// commits write a CRC-framed WAL record *before* they publish,
    /// segments seal to immutable on-disk files at checkpoints, and
    /// Open on an initialized directory recovers to exactly the last
    /// committed epoch (sealed segments + WAL tail replay). See
    /// docs/storage.md.
    std::string data_dir;
    /// When a commit's WAL write reaches stable media (storage/wal.h):
    /// kAlways fsyncs per commit, kInterval at most once per
    /// `sync_interval_ms`, kNever leaves flushing to the OS.
    storage::SyncMode sync_mode = storage::SyncMode::kAlways;
    uint32_t sync_interval_ms = 100;
    /// Seal the stack and rotate the WAL once the log outgrows this.
    uint64_t checkpoint_wal_bytes = 64ull << 20;
  };

  /// Takes ownership of `edb` and publishes it as the epoch-0 segment.
  /// `u` must be the Universe the instance's paths are interned in and
  /// must outlive the Database. (Two overloads rather than a default
  /// argument: GCC rejects defaulted nested-aggregate arguments inside
  /// the enclosing class.)
  static Result<Database> Open(Universe& u, Instance edb,
                               const OpenOptions& opts);
  static Result<Database> Open(Universe& u, Instance edb);

  /// Durable open without a seed instance: recovers an initialized
  /// `opts.data_dir` to its last committed epoch, or initializes a
  /// fresh directory with an empty EDB. `opts.data_dir` must be
  /// non-empty. The Instance overload above also accepts a data_dir,
  /// but only to *initialize* a fresh directory from `edb` — opening
  /// an already-initialized directory with a non-empty seed fails with
  /// kIoError [SD405] rather than guessing whether to merge or ignore.
  static Result<Database> Open(Universe& u, const OpenOptions& opts);

  /// True when `dir` holds an initialized data directory (a CURRENT
  /// pointer): Open will recover rather than initialize.
  static bool DataDirInitialized(const std::string& dir);

  // Moves and the destructor are defined out of line: DbState holds the
  // (forward-declared) ViewManager by unique_ptr.
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// An epoch-pinned view of the database: the returned session reads
  /// exactly the facts committed as of now, forever, regardless of later
  /// Append/Commit/Compact calls. Any number may be open at once, from
  /// any threads. OpenSession() is the same operation under its PR 2
  /// name.
  Session Snapshot() const;
  Session OpenSession() const;

  /// Publishes `delta` as a new immutable segment and bumps the epoch.
  /// Facts already present in the current stack are dropped (segments
  /// stay pairwise disjoint); if nothing remains, no segment is published
  /// and the epoch does not move. Returns the epoch the facts are visible
  /// at, and (optionally) how many facts were actually new — measured
  /// under the writer lock, so it is exact even with concurrent writers.
  /// Serializes with other writers; never blocks readers.
  Result<uint64_t> Append(Instance delta, size_t* appended = nullptr);

  /// Publishes a *tombstone* segment retracting `victims` and bumps the
  /// epoch. Facts not currently visible are dropped (retracting an absent
  /// or already-retracted fact is a no-op); if nothing remains, no
  /// segment is published and the epoch does not move. Returns the epoch
  /// the retraction is visible at, and (optionally) how many facts were
  /// actually retracted. Serializes with other writers; never blocks
  /// readers — sessions pinned at older epochs keep seeing the facts.
  Result<uint64_t> Retract(Instance victims, size_t* retracted = nullptr);

  /// A batching ingest handle: stage facts with Add/Stage (and
  /// retractions with Retract), publish them with Commit.
  Writer MakeWriter();

  /// Folds all current segments into one merged *fact* segment, applying
  /// tombstones as it goes: the merged stack holds exactly the visible
  /// facts and no tombstone segments, so post-compaction queries pay no
  /// shadow probes at all. The visible fact set and the epoch are
  /// unchanged — compaction is invisible to semantics; it trades one
  /// rebuild for O(1) segment probes afterwards. Open sessions keep their
  /// pinned pre-compaction segments (freed when the last such session
  /// closes). Returns false if there was nothing to fold (one segment or
  /// none). In durable mode the merged segment seals to disk and a new
  /// manifest generation publishes *before* the in-memory swap
  /// (copy-forward-then-swap): on error nothing changes, in memory or
  /// on disk, and the Status carries an SD4xx diagnostic code
  /// (DiagnosticFromStatus renders it). Serializes with other writers.
  Result<bool> Compact();

  /// Runs Compact() iff the OpenOptions policy says the stack is too
  /// deep (auto_compact_segments / auto_compact_tail_ratio). Append calls
  /// this after every publish; it is also callable directly.
  Result<bool> MaybeCompact();

  /// Retires the database from ingest: every later Append or
  /// Writer::Commit fails with kFailedPrecondition, and Compact becomes a
  /// no-op. Reads are unaffected — Snapshot() and open sessions keep
  /// serving the final epoch. Idempotent. A draining server closes its
  /// database so late appends cannot land after the final epoch was
  /// reported.
  void Close();
  bool closed() const;

  /// The current epoch: 0 after Open, +1 per published Append/Commit.
  uint64_t epoch() const;
  /// Number of segments in the current stack (1 after Open or Compact).
  size_t NumSegments() const;
  /// Total *visible* facts across the current stack (appended minus
  /// retracted).
  size_t NumFacts() const;
  /// Number of tombstone segments in the current stack (0 right after
  /// Open or Compact — compaction folds every tombstone away).
  size_t NumTombstones() const;

  /// Measured per-(relation, column, index-family) statistics of the
  /// current epoch: every live segment's call_once-cached measurement
  /// merged with everything sessions derived in runs that set
  /// RunOptions::collect_derived_stats. Derived-run measurements age out
  /// as epochs bump (StatsAccumulator::Age), so estimates can shrink
  /// after compaction instead of pinning the all-time max. Feed the
  /// snapshot into CompileOptions::stats — or just call Compile() below —
  /// so the planner ranks access paths by measured selectivity.
  /// Thread-safe.
  StoreStats Stats() const;

  /// Compiles `p` against this database's Universe with Stats() as the
  /// planner's selectivity input. Equivalent to Engine::Compile with
  /// opts.stats pointed at a Stats() snapshot. (Two overloads rather than
  /// a default argument, matching Open above.)
  Result<PreparedProgram> Compile(Program p, const CompileOptions& opts) const;
  Result<PreparedProgram> Compile(Program p) const;

  /// The materialized-view subsystem over this database (view/view.h):
  /// per-program derived-IDB snapshots kept current across appends by
  /// delta evaluation instead of re-running the fixpoint. Lazily does
  /// nothing until someone calls ViewManager::Refresh; heap-stable (lives
  /// in DbState), so the reference survives moves of the Database.
  ViewManager& views() const;

  /// Durability counters (manifest generation, on-disk bytes, WAL
  /// length) for DbInfo/kStats replies. All zero for an in-memory
  /// database. Thread-safe (server stats workers race the writer).
  storage::StorageInfo storage_info() const;

  Universe& universe() const { return *state_->universe; }
  /// Materializes the union of the current stack's facts (a copy — the
  /// EDB spans several immutable segments once appends happened).
  Instance edb() const;
  /// The first (oldest / post-compaction merged) segment of the current
  /// stack, for tests and tools. The reference is stable only while no
  /// concurrent writer compacts; single-threaded callers only.
  const BaseStore& base() const;
  /// Number of (relation, column) columns whose indexes exist so far,
  /// summed over the current stack's segments.
  size_t NumIndexedColumns() const;

 private:
  friend class Session;
  friend class ViewManager;
  friend class Writer;

  /// One published version: an immutable, atomically swapped value.
  /// Sessions pin it (and thereby every segment) by shared ownership.
  struct SegmentSet {
    uint64_t epoch = 0;
    std::vector<std::shared_ptr<const BaseStore>> segments;
    /// Parallel to `segments`: the epoch each segment was published at
    /// (0 for the Open segment; compaction stamps the merged segment
    /// with the newest folded stamp). How ViewManager tells the
    /// delta segments apart from the base a view of epoch e already
    /// covers: everything stamped > e is new. Over-approximate across
    /// compaction — a merged segment counts as entirely new for views
    /// older than its stamp — which is sound (delta evaluation of facts
    /// already reflected in the view just re-derives known tuples).
    std::vector<uint64_t> segment_epochs;
    /// Parallel to `segments`: what each segment's tuples mean — facts
    /// add, tombstones retract (shadowing all older segments). Filled by
    /// every constructor of a SegmentSet; append-only stacks are all
    /// kFacts.
    std::vector<SegmentKind> segment_kinds;
    /// Delta-maintenance horizon for retractions: a view pinned at an
    /// epoch < shrink_floor cannot be delta-maintained, because Compact()
    /// folded away tombstone evidence the view has not seen — Refresh
    /// must fall back to a cold run. Raised by compaction to the newest
    /// folded tombstone's publish stamp; 0 while no retraction was ever
    /// compacted away.
    uint64_t shrink_floor = 0;
    /// Visible facts (appended minus retracted).
    size_t total_facts = 0;
  };

  /// Heap-stable shared state: the Database object may move while
  /// sessions and writers hold pointers into this.
  struct DbState {
    // Out of line: the unique_ptr<ViewManager> member must only require
    // the complete ViewManager type inside database.cc.
    DbState();
    ~DbState();

    Universe* universe = nullptr;
    OpenOptions opts;
    /// Guards `current` (pointer swap only — never held during index
    /// builds or runs).
    mutable std::mutex mu;
    std::shared_ptr<const SegmentSet> current;
    /// Serializes Append/Commit/Compact (single-writer).
    std::mutex writer_mu;
    /// Set by Close(): writers fail, readers continue.
    std::atomic<bool> closed{false};
    StatsAccumulator accum;
    /// The materialized-view subsystem (view/view.h); constructed at
    /// Open so views() can hand out a stable reference.
    std::unique_ptr<ViewManager> views;
    /// Durability engine (null for an in-memory database). Mutated only
    /// under writer_mu; storage->info() is internally synchronized.
    std::unique_ptr<storage::StorageEngine> storage;
    /// True while Open replays the WAL tail through the normal commit
    /// path: suppresses WAL logging (the records are already on disk),
    /// auto-compaction and checkpoints (rotating the WAL mid-replay
    /// would drop the records not yet replayed). Only touched during
    /// single-threaded Open.
    bool replaying = false;

    std::shared_ptr<const SegmentSet> Current() const {
      std::lock_guard<std::mutex> lock(mu);
      return current;
    }
    void Publish(std::shared_ptr<const SegmentSet> next) {
      std::lock_guard<std::mutex> lock(mu);
      current = std::move(next);
    }
  };

  explicit Database(std::unique_ptr<DbState> state)
      : state_(std::move(state)) {}

  /// The append path shared by Database::Append and Writer::Commit.
  /// `appended` (may be null) receives the post-dedupe fact count.
  static Result<uint64_t> AppendTo(DbState& state, Instance delta,
                                   size_t* appended);
  /// The retract path shared by Database::Retract and Writer::Commit.
  /// `retracted` (may be null) receives the number of visible facts
  /// actually tombstoned.
  static Result<uint64_t> RetractFrom(DbState& state, Instance victims,
                                      size_t* retracted);
  /// Compact step with writer_mu already held. In durable mode seals
  /// the merged stack before the in-memory swap.
  static Result<bool> CompactLocked(DbState& state);
  static bool PolicyWantsCompaction(const DbState& state,
                                    const SegmentSet& set);
  /// Seals the *given* (about-to-publish or current) stack under a new
  /// manifest generation; writer_mu must be held. No-op in memory-only
  /// mode.
  static Status CheckpointLocked(DbState& state, const SegmentSet& set,
                                 bool rewrite);

  std::unique_ptr<DbState> state_;
};

/// An epoch-pinned snapshot handle over a Database. Copyable and cheap;
/// safe to use from one thread at a time (open one per thread —
/// Snapshot() is free). All runs see exactly the facts of the pinned
/// epoch and write only private overlays; concurrent Append/Commit/
/// Compact on the Database never changes what this session reads. Pins
/// its segments by shared ownership, so moving the Database — or
/// compacting it — does not invalidate open sessions.
class Session {
 public:
  /// Runs `prog` over the pinned epoch's EDB; returns only the derived
  /// IDB facts. `prog` must be compiled against the database's Universe.
  /// With RunOptions::collect_derived_stats set, the run's derived facts
  /// are measured into EvalStats::derived_stats and folded into the
  /// Database's Stats(), so later compiles plan from observed workloads.
  Result<Instance> Run(const PreparedProgram& prog, const RunOptions& opts = {},
                       EvalStats* stats = nullptr) const;

  /// Runs and projects onto a single output relation.
  Result<Instance> RunQuery(const PreparedProgram& prog, RelId output,
                            const RunOptions& opts = {},
                            EvalStats* stats = nullptr) const;

  /// The epoch this session is pinned to.
  uint64_t epoch() const { return pinned_->epoch; }
  /// Segments backing this snapshot (compaction after the pin does not
  /// change this — the pre-compaction stack stays pinned).
  size_t NumSegments() const { return pinned_->segments.size(); }
  /// Total EDB facts visible to this session (appended minus retracted
  /// as of the pinned epoch).
  size_t NumFacts() const { return pinned_->total_facts; }
  /// Materializes the visible facts of the pinned stack (a copy):
  /// fact segments union in, tombstone segments remove.
  Instance edb() const;

 private:
  friend class Database;
  Session(Universe& u, std::shared_ptr<const Database::SegmentSet> pinned,
          StatsAccumulator* accum)
      : universe_(&u), pinned_(std::move(pinned)), accum_(accum) {}

  Universe* universe_;
  std::shared_ptr<const Database::SegmentSet> pinned_;
  /// The owning Database's derived-stats accumulator (heap-stable).
  StatsAccumulator* accum_;
};

/// A batching ingest handle: stage any number of facts (and
/// retractions), then publish them with Commit() — staged appends as one
/// fact segment, staged retractions as one tombstone segment right after
/// (up to two epoch bumps). One writer per thread; Commit serializes
/// against other writers and against Append/Retract/Compact on the
/// Database. The Writer must not outlive its Database.
class Writer {
 public:
  /// Stages one fact. Returns true if it was new among the staged facts
  /// (duplicates against the database resolve at Commit).
  bool Add(RelId rel, Tuple t) { return staged_.Add(rel, std::move(t)); }
  /// Stages every fact of `facts`.
  void Stage(const Instance& facts) { staged_.UnionWith(facts); }
  void Stage(Instance&& facts) { staged_.UnionWith(std::move(facts)); }

  /// Stages one retraction. Returns true if it was new among the staged
  /// retractions. Retractions publish *after* the staged appends, so a
  /// fact both staged and retracted in the same batch ends up retracted.
  bool Retract(RelId rel, Tuple t) {
    return retract_staged_.Add(rel, std::move(t));
  }

  size_t NumStaged() const { return staged_.NumFacts(); }
  size_t NumStagedRetractions() const { return retract_staged_.NumFacts(); }

  /// Publishes the staged facts as one new segment, then the staged
  /// retractions as one tombstone segment, and clears both staging
  /// areas. Returns the epoch everything is visible at (the current
  /// epoch unchanged when nothing staged had any effect).
  Result<uint64_t> Commit();

 private:
  friend class Database;
  explicit Writer(Database::DbState* state) : state_(state) {}

  Database::DbState* state_;
  Instance staged_;
  Instance retract_staged_;
};

}  // namespace seqdl

#endif  // SEQDL_ENGINE_DATABASE_H_
