// Database/Session: a long-lived, pre-indexed EDB serving concurrent runs.
//
// Database::Open loads an EDB instance once and wraps it in an immutable
// BaseStore whose per-(relation, column) whole-value / first-value /
// last-value indexes build exactly once (lazily on first probe, or
// eagerly with OpenOptions::eager_indexes). Sessions are lightweight
// snapshot handles over that base: each Run layers a private IDB overlay
// on top of the shared store, never mutating the base, so any number of
// sessions — on any number of threads — can run any number of
// PreparedPrograms against one Database concurrently:
//
//   SEQDL_ASSIGN_OR_RETURN(Database db, Database::Open(u, std::move(edb)));
//   SEQDL_ASSIGN_OR_RETURN(PreparedProgram prog, Engine::Compile(u, p));
//   Session session = db.OpenSession();
//   SEQDL_ASSIGN_OR_RETURN(Instance derived, session.Run(prog));  // derived
//   SEQDL_ASSIGN_OR_RETURN(Instance reach, session.RunQuery(prog, rel));
//
// Thread-safety contract: the Universe interns with synchronization, the
// BaseStore's lazy index build is std::call_once-guarded, and all per-run
// mutable state (overlay, deltas, valuations) is private to the run.
// Sessions must not outlive their Database; the Database must not outlive
// the Universe.
//
// Unlike PreparedProgram::Run (input plus derived facts), Session::Run
// returns only the facts the program derived — the EDB is shared and
// usually large, so callers materialize db.edb() + derived only when they
// actually need the union.
#ifndef SEQDL_ENGINE_DATABASE_H_
#define SEQDL_ENGINE_DATABASE_H_

#include <memory>

#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/engine/index.h"
#include "src/engine/instance.h"
#include "src/engine/stats.h"
#include "src/term/universe.h"

namespace seqdl {

class Session;

/// A long-lived EDB: owns one immutable BaseStore shared by every session.
/// Move-only; must outlive all sessions opened from it.
class Database {
 public:
  struct OpenOptions {
    /// Build every (relation, column) index at Open time instead of on
    /// first probe. Front-loads the full indexing cost; with the default
    /// lazy build, each column's indexes build on the first query that
    /// probes them (still exactly once across all sessions and threads).
    bool eager_indexes = false;
  };

  /// Takes ownership of `edb` and indexes it. `u` must be the Universe the
  /// instance's paths are interned in and must outlive the Database.
  /// (Two overloads rather than a default argument: GCC rejects defaulted
  /// nested-aggregate arguments inside the enclosing class.)
  static Result<Database> Open(Universe& u, Instance edb,
                               const OpenOptions& opts);
  static Result<Database> Open(Universe& u, Instance edb);

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// A lightweight handle for running programs over this database. Any
  /// number may be open at once, from any threads.
  Session OpenSession() const;

  /// Measured per-(relation, column, index-family) statistics: the base
  /// EDB's bucket shapes (measured once — the base never changes) merged
  /// with everything sessions derived in runs that set
  /// RunOptions::collect_derived_stats. Feed the snapshot into
  /// CompileOptions::stats — or just call Compile() below — so the
  /// planner ranks access paths by measured selectivity. Thread-safe.
  StoreStats Stats() const;

  /// Compiles `p` against this database's Universe with Stats() as the
  /// planner's selectivity input. Equivalent to Engine::Compile with
  /// opts.stats pointed at a Stats() snapshot. (Two overloads rather than
  /// a default argument, matching Open above.)
  Result<PreparedProgram> Compile(Program p, const CompileOptions& opts) const;
  Result<PreparedProgram> Compile(Program p) const;

  Universe& universe() const { return *universe_; }
  /// The loaded EDB facts.
  const Instance& edb() const { return base_->instance(); }
  /// The shared indexed store (mostly for tests and tools).
  const BaseStore& base() const { return *base_; }
  /// Number of (relation, column) columns whose indexes exist so far.
  size_t NumIndexedColumns() const { return base_->NumIndexedColumns(); }

 private:
  Database(Universe& u, std::unique_ptr<BaseStore> base)
      : universe_(&u),
        base_(std::move(base)),
        accum_(std::make_unique<StatsAccumulator>()) {}

  Universe* universe_;
  /// unique_ptr: BaseStore is immovable (per-column once_flags), and the
  /// address must stay stable for open sessions while Database moves.
  std::unique_ptr<BaseStore> base_;
  /// Derived-fact statistics reported back by session runs; heap-stable
  /// for the same reason as base_.
  std::unique_ptr<StatsAccumulator> accum_;
};

/// A snapshot handle over a Database. Copyable and cheap; safe to use from
/// one thread at a time (open one per thread — OpenSession is free).
/// All runs see the same immutable EDB and write only private overlays.
/// Holds the heap-stable BaseStore directly (not the Database object), so
/// moving the Database does not invalidate open sessions.
class Session {
 public:
  /// Runs `prog` over the database's EDB; returns only the derived IDB
  /// facts. `prog` must be compiled against the database's Universe.
  /// With RunOptions::collect_derived_stats set, the run's derived facts
  /// are measured into EvalStats::derived_stats and folded into the
  /// Database's Stats(), so later compiles plan from observed workloads.
  Result<Instance> Run(const PreparedProgram& prog, const RunOptions& opts = {},
                       EvalStats* stats = nullptr) const;

  /// Runs and projects onto a single output relation.
  Result<Instance> RunQuery(const PreparedProgram& prog, RelId output,
                            const RunOptions& opts = {},
                            EvalStats* stats = nullptr) const;

  /// The EDB facts this session runs over.
  const Instance& edb() const { return base_->instance(); }

 private:
  friend class Database;
  Session(Universe& u, const BaseStore& base, StatsAccumulator* accum)
      : universe_(&u), base_(&base), accum_(accum) {}

  Universe* universe_;
  const BaseStore* base_;
  /// The owning Database's derived-stats accumulator (heap-stable).
  StatsAccumulator* accum_;
};

}  // namespace seqdl

#endif  // SEQDL_ENGINE_DATABASE_H_
