// Matching path expressions against ground paths: enumerate all valuations
// ν extending a partial valuation such that ν(e) = p. This is the engine's
// core pattern-matching primitive (one side ground — unlike the general
// associative unification of unify/, which handles two symbolic sides).
#ifndef SEQDL_ENGINE_MATCH_H_
#define SEQDL_ENGINE_MATCH_H_

#include <functional>
#include <unordered_map>

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// A (partial) assignment of variables to paths. Atomic variables always
/// bind to a singleton path holding an atomic value.
class Valuation {
 public:
  bool IsBound(VarId v) const { return bindings_.count(v) > 0; }
  /// Requires IsBound(v).
  PathId Get(VarId v) const { return bindings_.at(v); }
  void Bind(VarId v, PathId p) { bindings_[v] = p; }
  void Unbind(VarId v) { bindings_.erase(v); }
  size_t size() const { return bindings_.size(); }
  const std::unordered_map<VarId, PathId>& bindings() const {
    return bindings_;
  }

 private:
  std::unordered_map<VarId, PathId> bindings_;
};

/// Evaluates `e` under `v`; error if a variable of `e` is unbound.
Result<PathId> EvalExpr(Universe& u, const PathExpr& e, const Valuation& v);

/// True iff all variables of `e` are bound in `v`.
bool AllVarsBound(const PathExpr& e, const Valuation& v);

/// Enumerates every extension ν of `base` with ν(e) = p. Calls `cb` for
/// each; if cb returns false, enumeration stops. Returns false if stopped.
bool MatchExpr(Universe& u, const PathExpr& e, PathId p, Valuation& base,
               const std::function<bool(Valuation&)>& cb);

/// Matches a sequence of expressions against a tuple of paths
/// (componentwise); used for predicate-vs-fact matching.
bool MatchArgs(Universe& u, const std::vector<PathExpr>& args,
               const std::vector<PathId>& tuple, Valuation& base,
               const std::function<bool(Valuation&)>& cb);

}  // namespace seqdl

#endif  // SEQDL_ENGINE_MATCH_H_
