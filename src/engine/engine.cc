#include "src/engine/engine.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "src/analysis/safety.h"
#include "src/engine/index.h"
#include "src/engine/match.h"
#include "src/syntax/printer.h"

namespace seqdl {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Sentinel for "no scan step is restricted to the delta this pass".
constexpr size_t kNoDeltaStep = static_cast<size_t>(-1);

/// How many rule firings pass between cancellation polls.
constexpr size_t kCancelPollInterval = 256;

/// One explain line for a plan step: the access path the executor will
/// take, the planner's selectivity estimate (when compiled with
/// statistics), and whether measured data — rather than a heuristic or an
/// unknown-relation prior — made the choice.
std::string DescribeStep(const Universe& u, const RulePlan& plan,
                         size_t step_idx) {
  const PlanStep& step = plan.steps[step_idx];
  const Literal& lit = plan.rule->body[step.lit_idx];
  std::string out;
  switch (step.kind) {
    case PlanStep::Kind::kScan: {
      out = "scan " + u.RelName(lit.pred.rel) + ": ";
      if (step.index_arg >= 0) {
        out += "whole-value key col " + std::to_string(step.index_arg);
      } else if (step.prefix_arg >= 0) {
        out += "first-value key col " + std::to_string(step.prefix_arg) +
               " (prefix " + FormatExpr(u, step.prefix_expr) + ")";
      } else if (step.suffix_arg >= 0) {
        out += "last-value key col " + std::to_string(step.suffix_arg) +
               " (suffix " + FormatExpr(u, step.suffix_expr) + ")";
      } else {
        out += "full scan";
      }
      if (step.est_cost >= 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), ", est %.2f", step.est_cost);
        out += buf;
        out += step.stats_chosen ? " [stats]" : " [prior]";
      }
      for (size_t rec : plan.recursive_scan_steps) {
        if (rec == step_idx) {
          out += " [delta]";
          break;
        }
      }
      return out;
    }
    case PlanStep::Kind::kEq:
      return "eq " + FormatLiteral(u, lit);
    case PlanStep::Kind::kNegPred:
    case PlanStep::Kind::kNegEq:
      return "check " + FormatLiteral(u, lit);
  }
  return out;
}

}  // namespace

namespace internal {

// One run of a prepared program. Owns all mutable evaluation state (the
// private IDB overlay, pending facts, deltas), so a (const)
// PreparedProgram can execute any number of runs — concurrently, when
// they share an immutable BaseStore: the base is only ever read, and the
// Universe interns with synchronization.
class Executor {
 public:
  Executor(Universe& u, const PreparedProgram& prog, const RunOptions& opts,
           EvalStats* stats)
      : u_(u), prog_(prog), opts_(opts), stats_(stats) {}

  // Evaluates over the (shared, never mutated) base segments; returns the
  // derived IDB overlay only. Segments are scanned in stack order (oldest
  // epoch first), which preserves the single-base enumeration order
  // bit-for-bit when there is one segment.
  Result<Instance> Run(std::span<const BaseStore* const> segments) {
    store_ = LayeredStore(u_, segments);
    for (const auto& stratum : StrataOf(prog_)) {
      if (stats_) stats_->per_stratum.emplace_back();
      SEQDL_RETURN_IF_ERROR(EvalStratum(stratum));
    }
    return store_.TakeOverlay();
  }

  // Incremental maintenance over the full current segment stack: adopts
  // the stored view where sound, delta-evaluates the appended facts, and
  // recomputes exactly the strata whose inputs changed in a way delta
  // passes cannot express (see PreparedProgram::RunDelta's contract).
  Result<PreparedProgram::DeltaRun> RunDelta(
      std::span<const BaseStore* const> segments,
      std::span<const BaseStore* const> delta_segments, const Instance& view) {
    store_ = LayeredStore(u_, segments);

    // The changed-fact sets cascading down the strata: the appended EDB
    // facts to begin with, plus everything each stratum adds (and, for
    // recomputed strata, retracts).
    std::map<RelId, TupleSet> changed;
    for (const BaseStore* seg : delta_segments) {
      const Instance& inst = seg->instance();
      for (RelId rel : inst.Relations()) {
        TupleSet& ts = changed[rel];
        for (const Tuple& t : inst.Tuples(rel)) ts.insert(t);
        if (stats_) stats_->delta_seed_facts += inst.Tuples(rel).size();
      }
    }
    // Relations that lost facts. A delta pass can only add, so any
    // dependent stratum must recompute; only recomputed strata can
    // retract, so this stays empty on the pure-growth fast path.
    std::set<RelId> shrunk;

    PreparedProgram::DeltaRun out;
    const std::vector<Stratum>& strata = prog_.program().strata;
    for (size_t s = 0; s < strata.size(); ++s) {
      const CompiledStratum& compiled = StrataOf(prog_)[s];
      if (stats_) stats_->per_stratum.emplace_back();

      // A stratum is maintainable iff its rules only see *additions*
      // through positive literals: a changed negated input can invalidate
      // stored facts, and a shrunk positive input can too — both mean the
      // stored view facts are not necessarily still derivable.
      bool recompute = false;
      for (const Rule& r : strata[s].rules) {
        for (const Literal& l : r.body) {
          if (!l.is_predicate()) continue;
          if (shrunk.count(l.pred.rel) != 0 ||
              (l.negated && changed.count(l.pred.rel) != 0)) {
            recompute = true;
          }
        }
      }

      std::set<RelId> heads;
      for (const Rule& r : strata[s].rules) heads.insert(r.head.rel);

      // Everything this stratum's evaluation accepts into the overlay,
      // recorded by MergePending for the cascade bookkeeping below.
      Instance added;
      stratum_added_ = &added;
      Status st;
      if (!recompute) {
        // Adopt the stored facts wholesale, then delta-evaluate the
        // changed inputs. The view holds no fact of the segments it was
        // computed over (a view never contains EDB facts, and a folded
        // segment keeps its newest publish stamp, so every non-delta
        // segment predates the view), which lets Adopt dedupe against
        // the delta segments only — view facts the append promoted to
        // EDB drop out of the overlay exactly as a cold run would leave
        // them.
        for (RelId rel : heads) {
          store_.Adopt(rel, view.Tuples(rel), delta_segments);
        }
        st = EvalStratumDelta(compiled, changed);
      } else {
        st = EvalStratum(compiled);
      }
      stratum_added_ = nullptr;
      SEQDL_RETURN_IF_ERROR(st);

      if (!recompute) {
        if (stats_) ++stats_->strata_delta_maintained;
        for (RelId rel : added.Relations()) {
          TupleSet& ts = changed[rel];
          for (const Tuple& t : added.Tuples(rel)) ts.insert(t);
        }
      } else {
        if (stats_) ++stats_->strata_recomputed;
        out.recomputed_strata.push_back(s);
        // Diff the fresh result against the stored facts. Additions and
        // retractions both join the changed set; retractions also mark
        // the relation shrunk so dependent strata recompute. A stored
        // fact the append promoted to EDB is neither: the relation's
        // contents are unchanged, the fact merely moved layers.
        for (RelId rel : heads) {
          const TupleSet& fresh = added.Tuples(rel);
          const TupleSet& stored = view.Tuples(rel);
          for (const Tuple& t : stored) {
            if (fresh.count(t) != 0 || InSegments(rel, t)) continue;
            changed[rel].insert(t);
            shrunk.insert(rel);
          }
          for (const Tuple& t : fresh) {
            if (stored.count(t) == 0) changed[rel].insert(t);
          }
        }
      }
    }
    out.idb = store_.TakeOverlay();
    return out;
  }

 private:
  using CompiledStratum = PreparedProgram::CompiledStratum;

  static const std::vector<CompiledStratum>& StrataOf(
      const PreparedProgram& prog) {
    return prog.strata_;
  }

  StratumStats* CurrentStratumStats() {
    return stats_ ? &stats_->per_stratum.back() : nullptr;
  }

  Status EvalStratum(const CompiledStratum& stratum) {
    if (!opts_.seminaive) return EvalStratumNaive(stratum);

    // Round 0: all rules, full scans.
    std::map<RelId, TupleSet> delta;
    pending_.clear();
    for (const RulePlan& plan : stratum.plans) {
      SEQDL_RETURN_IF_ERROR(ApplyRule(plan, kNoDeltaStep, nullptr, nullptr));
    }
    SEQDL_RETURN_IF_ERROR(MergePending(&delta));

    // Delta rounds: re-run each rule once per recursive scan occurrence,
    // with that occurrence restricted to the previous round's delta. The
    // round's deltas are immutable while the round runs, so one
    // DeltaIndexer per round can index the large ones (see index.h).
    while (!delta.empty()) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      DeltaIndexer delta_idx(u_, delta, opts_.delta_index_threshold);
      for (const RulePlan& plan : stratum.plans) {
        for (size_t step_idx : plan.recursive_scan_steps) {
          SEQDL_RETURN_IF_ERROR(ApplyRule(plan, step_idx, &delta, &delta_idx));
        }
      }
      std::map<RelId, TupleSet> new_delta;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_delta));
      delta = std::move(new_delta);
    }
    return Status::OK();
  }

  // One maintenance pass for a stratum whose stored facts were adopted:
  // each rule re-runs once per scan step over a changed relation, with
  // that step restricted to the changed set (the appended EDB facts plus
  // everything earlier strata added — the other steps see the full
  // store, which already includes both the new segments and the adopted
  // view). The standard recursive delta rounds then close the fixpoint
  // over whatever the pass derived. Exactly the semi-naive argument:
  // every new derivation must use at least one changed fact somewhere,
  // and each such use is enumerated by the application restricting that
  // occurrence.
  Status EvalStratumDelta(const CompiledStratum& stratum,
                          const std::map<RelId, TupleSet>& changed) {
    std::map<RelId, TupleSet> delta;
    pending_.clear();
    SEQDL_RETURN_IF_ERROR(BumpRound());
    DeltaIndexer changed_idx(u_, changed, opts_.delta_index_threshold);
    for (size_t r = 0; r < stratum.plans.size(); ++r) {
      const RulePlan& plan = stratum.plans[r];
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        const PlanStep& st = plan.steps[i];
        if (st.kind != PlanStep::Kind::kScan) continue;
        if (changed.count(plan.rule->body[st.lit_idx].pred.rel) == 0) continue;
        SEQDL_RETURN_IF_ERROR(ApplyRestricted(stratum, r, st.lit_idx, i,
                                              &changed, &changed_idx));
      }
    }
    SEQDL_RETURN_IF_ERROR(MergePending(&delta));

    while (!delta.empty()) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      DeltaIndexer delta_idx(u_, delta, opts_.delta_index_threshold);
      for (size_t r = 0; r < stratum.plans.size(); ++r) {
        const RulePlan& plan = stratum.plans[r];
        for (size_t step_idx : plan.recursive_scan_steps) {
          SEQDL_RETURN_IF_ERROR(
              ApplyRestricted(stratum, r, plan.steps[step_idx].lit_idx,
                              step_idx, &delta, &delta_idx));
        }
      }
      std::map<RelId, TupleSet> new_delta;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_delta));
      delta = std::move(new_delta);
    }
    return Status::OK();
  }

  // Applies rule `r` with the scan of body literal `lit_idx` restricted
  // to `*delta`, through the delta-first plan variant when the compiler
  // built one (so the restricted scan is the outermost loop and the
  // application costs O(|delta|) probes, not an outer full scan).
  // `fallback_step` is the restricted literal's step in the base plan,
  // used when no variant exists.
  Status ApplyRestricted(const CompiledStratum& stratum, size_t r,
                         size_t lit_idx, size_t fallback_step,
                         const std::map<RelId, TupleSet>* delta,
                         DeltaIndexer* delta_idx) {
    if (r < stratum.delta_plans.size()) {
      auto it = stratum.delta_plans[r].find(lit_idx);
      if (it != stratum.delta_plans[r].end()) {
        return ApplyRule(it->second, 0, delta, delta_idx);
      }
    }
    return ApplyRule(stratum.plans[r], fallback_step, delta, delta_idx);
  }

  bool InSegments(RelId rel, const Tuple& t) const {
    for (const BaseStore* seg : store_.segments()) {
      if (seg->Contains(rel, t)) return true;
    }
    return false;
  }

  Status EvalStratumNaive(const CompiledStratum& stratum) {
    while (true) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      for (const RulePlan& plan : stratum.plans) {
        SEQDL_RETURN_IF_ERROR(ApplyRule(plan, kNoDeltaStep, nullptr, nullptr));
      }
      std::map<RelId, TupleSet> new_facts;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_facts));
      if (new_facts.empty()) return Status::OK();
    }
  }

  Status BumpRound() {
    SEQDL_RETURN_IF_ERROR(PollCancel());
    if (stats_) {
      ++stats_->rounds;
      ++CurrentStratumStats()->rounds;
    }
    if (++rounds_ > opts_.max_iterations) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_iterations = " +
          std::to_string(opts_.max_iterations) +
          " (the program may not terminate)");
    }
    return Status::OK();
  }

  Status PollCancel() {
    if (opts_.cancel && opts_.cancel()) {
      return Status::Cancelled("evaluation cancelled by RunOptions::cancel");
    }
    return Status::OK();
  }

  // Runs one rule; derived facts go to pending_. If `delta_step` is not
  // kNoDeltaStep, that scan step enumerates `*delta` instead of the store
  // (probing `*delta_idx` when the delta is large enough to be indexed).
  Status ApplyRule(const RulePlan& plan, size_t delta_step,
                   const std::map<RelId, TupleSet>* delta,
                   DeltaIndexer* delta_idx) {
    Valuation v;
    status_ = Status::OK();
    ExecuteStep(plan, 0, v, delta_step, delta, delta_idx);
    return status_;
  }

  // Returns false to abort enumeration (on error).
  bool ExecuteStep(const RulePlan& plan, size_t step_idx, Valuation& v,
                   size_t delta_step, const std::map<RelId, TupleSet>* delta,
                   DeltaIndexer* delta_idx) {
    if (!status_.ok()) return false;
    if (step_idx == plan.steps.size()) return DeriveHead(plan, v);

    const PlanStep& step = plan.steps[step_idx];
    const Literal& lit = plan.rule->body[step.lit_idx];
    auto next = [&](Valuation& v2) {
      return ExecuteStep(plan, step_idx + 1, v2, delta_step, delta,
                         delta_idx);
    };
    auto match_all = [&](const std::vector<const Tuple*>& bucket) {
      for (const Tuple* t : bucket) {
        if (!MatchArgs(u_, lit.pred.args, *t, v, next)) return false;
      }
      return true;
    };

    switch (step.kind) {
      case PlanStep::Kind::kScan: {
        if (step_idx == delta_step) {
          return ScanDelta(step, lit, v, delta, delta_idx, match_all, next);
        }
        StepKey key;
        if (opts_.use_index && !EvalStepKey(step, lit, v, &key)) return false;
        switch (key.kind) {
          case StepKey::Kind::kWhole:
            // The planner proved this argument ground under every
            // valuation reaching the step: probe the whole-value column
            // index of every layer (shared base segments in epoch order,
            // then the private overlay).
            if (stats_) ++stats_->index_probes;
            for (const BaseStore* seg : store_.segments()) {
              if (!match_all(seg->Probe(lit.pred.rel, key.col, key.whole))) {
                return false;
              }
            }
            return match_all(store_.overlay().Probe(lit.pred.rel, key.col,
                                                    key.whole));
          case StepKey::Kind::kFirst:
            // A leading prefix of this argument is ground: a matching
            // tuple must start with the prefix's first value, so probe the
            // first-value index (MatchArgs still filters exactly).
            if (stats_) ++stats_->prefix_probes;
            for (const BaseStore* seg : store_.segments()) {
              if (!match_all(
                      seg->ProbeFirst(lit.pred.rel, key.col, key.value))) {
                return false;
              }
            }
            return match_all(store_.overlay().ProbeFirst(lit.pred.rel, key.col,
                                                         key.value));
          case StepKey::Kind::kLast:
            // Symmetric: a trailing suffix is ground (`$x ++ a`); a
            // matching tuple must end with the suffix's last value, so
            // probe the last-value index.
            if (stats_) ++stats_->suffix_probes;
            for (const BaseStore* seg : store_.segments()) {
              if (!match_all(
                      seg->ProbeLast(lit.pred.rel, key.col, key.value))) {
                return false;
              }
            }
            return match_all(store_.overlay().ProbeLast(lit.pred.rel, key.col,
                                                        key.value));
          case StepKey::Kind::kNone:
            break;
        }
        if (stats_) ++stats_->full_scans;
        for (const BaseStore* seg : store_.segments()) {
          for (const Tuple& t : seg->Tuples(lit.pred.rel)) {
            if (!MatchArgs(u_, lit.pred.args, t, v, next)) return false;
          }
        }
        for (const Tuple& t : store_.overlay().Tuples(lit.pred.rel)) {
          if (!MatchArgs(u_, lit.pred.args, t, v, next)) return false;
        }
        return true;
      }
      case PlanStep::Kind::kEq: {
        bool lhs_bound = AllVarsBound(lit.lhs, v);
        bool rhs_bound = AllVarsBound(lit.rhs, v);
        if (lhs_bound && rhs_bound) {
          PathId a, b;
          if (!EvalTo(lit.lhs, v, &a) || !EvalTo(lit.rhs, v, &b)) return false;
          if (a != b) return true;
          return next(v);
        }
        if (lhs_bound) {
          PathId a;
          if (!EvalTo(lit.lhs, v, &a)) return false;
          return MatchExpr(u_, lit.rhs, a, v, next);
        }
        if (rhs_bound) {
          PathId b;
          if (!EvalTo(lit.rhs, v, &b)) return false;
          return MatchExpr(u_, lit.lhs, b, v, next);
        }
        status_ = Status::Internal("equation scheduled before being ground");
        return false;
      }
      case PlanStep::Kind::kNegPred: {
        Tuple t;
        t.reserve(lit.pred.args.size());
        for (const PathExpr& e : lit.pred.args) {
          PathId p;
          if (!EvalTo(e, v, &p)) return false;
          t.push_back(p);
        }
        // The negated relation is complete here (stratified negation): it is
        // either EDB or defined in an earlier stratum, so the store holds
        // all of its facts.
        if (store_.Contains(lit.pred.rel, t)) return true;
        return next(v);
      }
      case PlanStep::Kind::kNegEq: {
        PathId a, b;
        if (!EvalTo(lit.lhs, v, &a) || !EvalTo(lit.rhs, v, &b)) return false;
        if (a == b) return true;
        return next(v);
      }
    }
    return true;
  }

  // The evaluated index key of a scan step under the current valuation —
  // the single probe-selection logic shared by the store path
  // (ExecuteStep) and the delta path (ScanDelta), which used to mirror
  // it separately.
  struct StepKey {
    enum class Kind : uint8_t { kNone, kWhole, kFirst, kLast };

    Kind kind = Kind::kNone;
    uint32_t col = 0;
    PathId whole = kEmptyPath;  // kWhole: the ground argument's path.
    Value value;                // kFirst/kLast: the prefix/suffix end value.
  };

  // Evaluates the step's planned key: the fully ground argument
  // (whole-value), or the first/last value of the ground prefix/suffix.
  // kNone = the step has no key, or the prefix/suffix evaluated to eps (a
  // bound path variable holding the empty path constrains nothing) — scan
  // everything. Returns false on expression-evaluation error (status_
  // set).
  bool EvalStepKey(const PlanStep& step, const Literal& lit,
                   const Valuation& v, StepKey* key) {
    if (step.index_arg >= 0) {
      key->col = static_cast<uint32_t>(step.index_arg);
      key->kind = StepKey::Kind::kWhole;
      return EvalTo(lit.pred.args[static_cast<size_t>(step.index_arg)], v,
                    &key->whole);
    }
    if (step.prefix_arg >= 0) {
      PathId prefix;
      if (!EvalTo(step.prefix_expr, v, &prefix)) return false;
      if (prefix != kEmptyPath) {
        key->col = static_cast<uint32_t>(step.prefix_arg);
        key->kind = StepKey::Kind::kFirst;
        key->value = u_.GetPath(prefix).front();
      }
      return true;
    }
    if (step.suffix_arg >= 0) {
      PathId suffix;
      if (!EvalTo(step.suffix_expr, v, &suffix)) return false;
      if (suffix != kEmptyPath) {
        key->col = static_cast<uint32_t>(step.suffix_arg);
        key->kind = StepKey::Kind::kLast;
        key->value = u_.GetPath(suffix).back();
      }
      return true;
    }
    return true;
  }

  // A scan step restricted to the current round's delta. Small deltas are
  // scanned linearly; once a delta reaches RunOptions::delta_index_threshold
  // tuples, the per-round DeltaIndexer answers keyed steps with a bucket
  // probe instead (same key logic as the main store, via EvalStepKey).
  template <typename MatchAll, typename Next>
  bool ScanDelta(const PlanStep& step, const Literal& lit, Valuation& v,
                 const std::map<RelId, TupleSet>* delta,
                 DeltaIndexer* delta_idx, MatchAll&& match_all, Next&& next) {
    assert(delta != nullptr);
    if (stats_) ++stats_->delta_scans;
    auto it = delta->find(lit.pred.rel);
    if (it == delta->end()) return true;
    if (opts_.use_index && delta_idx != nullptr) {
      StepKey key;
      if (!EvalStepKey(step, lit, v, &key)) return false;
      const std::vector<const Tuple*>* bucket = nullptr;
      switch (key.kind) {
        case StepKey::Kind::kWhole:
          bucket = delta_idx->Probe(lit.pred.rel, key.col, key.whole);
          break;
        case StepKey::Kind::kFirst:
          bucket = delta_idx->ProbeFirst(lit.pred.rel, key.col, key.value);
          break;
        case StepKey::Kind::kLast:
          bucket = delta_idx->ProbeLast(lit.pred.rel, key.col, key.value);
          break;
        case StepKey::Kind::kNone:
          break;
      }
      // nullptr = the delta is below the indexing threshold; fall back to
      // the linear scan.
      if (bucket != nullptr) {
        if (stats_) ++stats_->delta_index_probes;
        return match_all(*bucket);
      }
    }
    for (const Tuple& t : it->second) {
      if (!MatchArgs(u_, lit.pred.args, t, v, next)) return false;
    }
    return true;
  }

  bool EvalTo(const PathExpr& e, const Valuation& v, PathId* out) {
    Result<PathId> r = EvalExpr(u_, e, v);
    if (!r.ok()) {
      status_ = r.status();
      return false;
    }
    *out = *r;
    return true;
  }

  bool DeriveHead(const RulePlan& plan, const Valuation& v) {
    if (stats_) {
      ++stats_->rule_firings;
      ++CurrentStratumStats()->rule_firings;
    }
    if (++firings_since_poll_ >= kCancelPollInterval) {
      firings_since_poll_ = 0;
      status_ = PollCancel();
      if (!status_.ok()) return false;
    }
    Tuple t;
    t.reserve(plan.rule->head.args.size());
    for (const PathExpr& e : plan.rule->head.args) {
      PathId p;
      if (!EvalTo(e, v, &p)) return false;
      if (u_.PathLength(p) > opts_.max_path_length) {
        status_ = Status::ResourceExhausted(
            "derived path longer than max_path_length = " +
            std::to_string(opts_.max_path_length) +
            " (the program may not terminate)");
        return false;
      }
      t.push_back(p);
    }
    RelId rel = plan.rule->head.rel;
    // Count the derivation event before deduplication: support counts
    // every firing that produces the tuple, not just the first.
    if (opts_.support != nullptr) ++(*opts_.support)[rel][t];
    if (store_.Contains(rel, t)) return true;
    if (pending_[rel].insert(std::move(t)).second) {
      ++derived_;
      if (stats_) {
        ++stats_->derived_facts;
        ++CurrentStratumStats()->derived_facts;
      }
      if (derived_ > opts_.max_facts) {
        status_ = Status::ResourceExhausted(
            "evaluation derived more than max_facts = " +
            std::to_string(opts_.max_facts) +
            " facts (the program may not terminate)");
        return false;
      }
    }
    return true;
  }

  // Moves pending facts into the store; facts that were genuinely new
  // are reported in `*fresh`.
  Status MergePending(std::map<RelId, TupleSet>* fresh) {
    fresh->clear();
    for (auto& [rel, tuples] : pending_) {
      for (const Tuple& t : tuples) {
        if (store_.Add(rel, t)) {
          (*fresh)[rel].insert(t);
          if (stratum_added_ != nullptr) stratum_added_->Add(rel, t);
        }
      }
    }
    pending_.clear();
    return Status::OK();
  }

  Universe& u_;
  const PreparedProgram& prog_;
  const RunOptions& opts_;
  EvalStats* stats_;
  LayeredStore store_;
  /// When non-null (RunDelta), MergePending also records every accepted
  /// fact here — the per-stratum additions the maintenance cascade diffs.
  Instance* stratum_added_ = nullptr;
  std::map<RelId, TupleSet> pending_;
  Status status_;
  size_t rounds_ = 0;
  size_t derived_ = 0;
  size_t firings_since_poll_ = 0;
};

}  // namespace internal

Result<PreparedProgram> Engine::Compile(Universe& u, Program p,
                                        const CompileOptions& opts) {
  return CompileShared(u, std::make_shared<Program>(std::move(p)), opts);
}

Result<PreparedProgram> Engine::CompileBorrowed(Universe& u,
                                                const Program& p,
                                                const CompileOptions& opts) {
  // Aliasing constructor: shares no ownership; the caller keeps `p` alive.
  return CompileShared(
      u, std::shared_ptr<const Program>(std::shared_ptr<void>(), &p), opts);
}

Result<PreparedProgram> Engine::CompileShared(
    Universe& u, std::shared_ptr<const Program> p,
    const CompileOptions& opts) {
  auto start = std::chrono::steady_clock::now();
  if (opts.validate) {
    SEQDL_RETURN_IF_ERROR(ValidateProgram(u, *p));
  }
  PreparedProgram prep(u, std::move(p));
  PlannerOptions popts;
  popts.reorder_scans = opts.reorder_scans;
  popts.stats = opts.stats;
  for (const Stratum& s : prep.program_->strata) {
    std::set<RelId> stratum_idb;
    for (const Rule& r : s.rules) stratum_idb.insert(r.head.rel);

    PreparedProgram::CompiledStratum compiled;
    for (const Rule& r : s.rules) {
      SEQDL_ASSIGN_OR_RETURN(RulePlan plan, PlanRule(u, r, popts));
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        const PlanStep& st = plan.steps[i];
        if (st.kind == PlanStep::Kind::kScan &&
            stratum_idb.count(r.body[st.lit_idx].pred.rel)) {
          plan.recursive_scan_steps.push_back(i);
        }
      }
      compiled.plans.push_back(std::move(plan));
      // Delta-first variants for incremental maintenance: one plan per
      // positive literal with that scan forced outermost, so a delta
      // restricted to it never hides behind a full outer scan.
      std::map<size_t, RulePlan> variants;
      for (size_t i = 0; i < r.body.size(); ++i) {
        const Literal& l = r.body[i];
        if (!l.is_predicate() || l.negated) continue;
        PlannerOptions vpopts = popts;
        vpopts.first_lit = static_cast<int>(i);
        SEQDL_ASSIGN_OR_RETURN(RulePlan variant, PlanRule(u, r, vpopts));
        variants.emplace(i, std::move(variant));
      }
      compiled.delta_plans.push_back(std::move(variants));
    }
    prep.strata_.push_back(std::move(compiled));
  }
  // Record the access-path decisions once; runs copy them into
  // EvalStats::plan_decisions.
  for (size_t s = 0; s < prep.strata_.size(); ++s) {
    for (size_t r = 0; r < prep.strata_[s].plans.size(); ++r) {
      const RulePlan& plan = prep.strata_[s].plans[r];
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        if (plan.steps[i].kind != PlanStep::Kind::kScan) continue;
        prep.plan_decisions_.push_back(
            "stratum " + std::to_string(s) + " rule " + std::to_string(r) +
            " step " + std::to_string(i) + ": " + DescribeStep(u, plan, i));
      }
    }
  }
  prep.compile_seconds_ = SecondsSince(start);
  return prep;
}

std::string PreparedProgram::ExplainPlan() const {
  const Universe& u = *universe_;
  std::string out;
  for (size_t s = 0; s < strata_.size(); ++s) {
    out += "stratum " + std::to_string(s) + "\n";
    for (size_t r = 0; r < strata_[s].plans.size(); ++r) {
      const RulePlan& plan = strata_[s].plans[r];
      out += "  rule " + std::to_string(r) + ": " + FormatRule(u, *plan.rule) +
             "\n";
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        out += "    step " + std::to_string(i) + ": " +
               DescribeStep(u, plan, i) + "\n";
      }
    }
  }
  return out;
}

Result<Instance> PreparedProgram::RunOnSegments(
    std::span<const BaseStore* const> segments, const RunOptions& opts,
    EvalStats* stats) const {
  auto start = std::chrono::steady_clock::now();
  if (stats) {
    *stats = EvalStats{};
    stats->compile_seconds = compile_seconds_;
    stats->plan_decisions = plan_decisions_;
  }
  internal::Executor exec(*universe_, *this, opts, stats);
  Result<Instance> out = exec.Run(segments);
  if (stats && opts.collect_derived_stats && out.ok()) {
    stats->derived_stats = ComputeInstanceStats(*universe_, *out);
  }
  if (stats) stats->run_seconds = SecondsSince(start);
  return out;
}

Result<PreparedProgram::DeltaRun> PreparedProgram::RunDelta(
    std::span<const BaseStore* const> segments,
    std::span<const BaseStore* const> delta_segments, const Instance& view,
    const RunOptions& opts, EvalStats* stats) const {
  auto start = std::chrono::steady_clock::now();
  if (stats) {
    *stats = EvalStats{};
    stats->compile_seconds = compile_seconds_;
    stats->plan_decisions = plan_decisions_;
  }
  internal::Executor exec(*universe_, *this, opts, stats);
  Result<DeltaRun> out = exec.RunDelta(segments, delta_segments, view);
  if (stats && opts.collect_derived_stats && out.ok()) {
    stats->derived_stats = ComputeInstanceStats(*universe_, out->idb);
  }
  if (stats) stats->run_seconds = SecondsSince(start);
  return out;
}

Result<Instance> PreparedProgram::RunOnBase(const BaseStore& base,
                                            const RunOptions& opts,
                                            EvalStats* stats) const {
  const BaseStore* segment = &base;
  return RunOnSegments({&segment, 1}, opts, stats);
}

Result<Instance> PreparedProgram::Run(const Instance& input,
                                      const RunOptions& opts,
                                      EvalStats* stats) const {
  // Legacy semantics (input plus derived facts) over the layered engine:
  // wrap the input in a throwaway base, run, and union the derived overlay
  // back into the input copy the base holds.
  BaseStore base(*universe_, input);
  SEQDL_ASSIGN_OR_RETURN(Instance derived, RunOnBase(base, opts, stats));
  Instance out = base.TakeInstance();
  out.UnionWith(std::move(derived));
  return out;
}

Result<Instance> PreparedProgram::RunQuery(const Instance& input,
                                           RelId output,
                                           const RunOptions& opts,
                                           EvalStats* stats) const {
  SEQDL_ASSIGN_OR_RETURN(Instance full, Run(input, opts, stats));
  return full.Project({output});
}

}  // namespace seqdl
