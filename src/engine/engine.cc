#include "src/engine/engine.h"

#include <cassert>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "src/analysis/safety.h"
#include "src/engine/index.h"
#include "src/engine/match.h"

namespace seqdl {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Sentinel for "no scan step is restricted to the delta this pass".
constexpr size_t kNoDeltaStep = static_cast<size_t>(-1);

/// How many rule firings pass between cancellation polls.
constexpr size_t kCancelPollInterval = 256;

}  // namespace

namespace internal {

// One run of a prepared program. Owns all mutable evaluation state, so a
// (const) PreparedProgram can execute any number of runs.
class Executor {
 public:
  Executor(Universe& u, const PreparedProgram& prog, const RunOptions& opts,
           EvalStats* stats)
      : u_(u), prog_(prog), opts_(opts), stats_(stats) {}

  Result<Instance> Run(const Instance& input) {
    store_ = IndexedInstance(u_, input);
    for (const auto& stratum : StrataOf(prog_)) {
      if (stats_) stats_->per_stratum.emplace_back();
      SEQDL_RETURN_IF_ERROR(EvalStratum(stratum));
    }
    return store_.TakeInstance();
  }

 private:
  using CompiledStratum = PreparedProgram::CompiledStratum;

  static const std::vector<CompiledStratum>& StrataOf(
      const PreparedProgram& prog) {
    return prog.strata_;
  }

  StratumStats* CurrentStratumStats() {
    return stats_ ? &stats_->per_stratum.back() : nullptr;
  }

  Status EvalStratum(const CompiledStratum& stratum) {
    if (!opts_.seminaive) return EvalStratumNaive(stratum);

    // Round 0: all rules, full scans.
    std::map<RelId, TupleSet> delta;
    pending_.clear();
    for (const RulePlan& plan : stratum.plans) {
      SEQDL_RETURN_IF_ERROR(ApplyRule(plan, kNoDeltaStep, nullptr));
    }
    SEQDL_RETURN_IF_ERROR(MergePending(&delta));

    // Delta rounds: re-run each rule once per recursive scan occurrence,
    // with that occurrence restricted to the previous round's delta.
    while (!delta.empty()) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      for (const RulePlan& plan : stratum.plans) {
        for (size_t step_idx : plan.recursive_scan_steps) {
          SEQDL_RETURN_IF_ERROR(ApplyRule(plan, step_idx, &delta));
        }
      }
      std::map<RelId, TupleSet> new_delta;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_delta));
      delta = std::move(new_delta);
    }
    return Status::OK();
  }

  Status EvalStratumNaive(const CompiledStratum& stratum) {
    while (true) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      for (const RulePlan& plan : stratum.plans) {
        SEQDL_RETURN_IF_ERROR(ApplyRule(plan, kNoDeltaStep, nullptr));
      }
      std::map<RelId, TupleSet> new_facts;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_facts));
      if (new_facts.empty()) return Status::OK();
    }
  }

  Status BumpRound() {
    SEQDL_RETURN_IF_ERROR(PollCancel());
    if (stats_) {
      ++stats_->rounds;
      ++CurrentStratumStats()->rounds;
    }
    if (++rounds_ > opts_.max_iterations) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_iterations = " +
          std::to_string(opts_.max_iterations) +
          " (the program may not terminate)");
    }
    return Status::OK();
  }

  Status PollCancel() {
    if (opts_.cancel && opts_.cancel()) {
      return Status::Cancelled("evaluation cancelled by RunOptions::cancel");
    }
    return Status::OK();
  }

  // Runs one rule; derived facts go to pending_. If `delta_step` is not
  // kNoDeltaStep, that scan step enumerates `*delta` instead of the store.
  Status ApplyRule(const RulePlan& plan, size_t delta_step,
                   const std::map<RelId, TupleSet>* delta) {
    Valuation v;
    status_ = Status::OK();
    ExecuteStep(plan, 0, v, delta_step, delta);
    return status_;
  }

  // Returns false to abort enumeration (on error).
  bool ExecuteStep(const RulePlan& plan, size_t step_idx, Valuation& v,
                   size_t delta_step, const std::map<RelId, TupleSet>* delta) {
    if (!status_.ok()) return false;
    if (step_idx == plan.steps.size()) return DeriveHead(plan, v);

    const PlanStep& step = plan.steps[step_idx];
    const Literal& lit = plan.rule->body[step.lit_idx];
    auto next = [&](Valuation& v2) {
      return ExecuteStep(plan, step_idx + 1, v2, delta_step, delta);
    };

    switch (step.kind) {
      case PlanStep::Kind::kScan: {
        if (step_idx == delta_step) {
          assert(delta != nullptr);
          if (stats_) ++stats_->delta_scans;
          auto it = delta->find(lit.pred.rel);
          if (it == delta->end()) return true;
          for (const Tuple& t : it->second) {
            if (!MatchArgs(u_, lit.pred.args, t, v, next)) return false;
          }
          return true;
        }
        if (opts_.use_index && step.index_arg >= 0) {
          // The planner proved this argument ground under every valuation
          // reaching the step: evaluate it and probe the column index.
          PathId key;
          if (!EvalTo(lit.pred.args[static_cast<size_t>(step.index_arg)], v,
                      &key)) {
            return false;
          }
          if (stats_) ++stats_->index_probes;
          for (const Tuple* t : store_.Probe(
                   lit.pred.rel, static_cast<uint32_t>(step.index_arg),
                   key)) {
            if (!MatchArgs(u_, lit.pred.args, *t, v, next)) return false;
          }
          return true;
        }
        if (opts_.use_index && step.prefix_arg >= 0) {
          // A leading prefix of this argument is ground: a matching tuple
          // must start with the prefix's first value, so probe the
          // first-value index (MatchArgs still filters exactly). An empty
          // prefix (a bound path variable holding eps) constrains nothing;
          // fall through to a full scan then.
          PathId prefix;
          if (!EvalTo(step.prefix_expr, v, &prefix)) return false;
          if (prefix != kEmptyPath) {
            if (stats_) ++stats_->prefix_probes;
            for (const Tuple* t : store_.ProbeFirst(
                     lit.pred.rel, static_cast<uint32_t>(step.prefix_arg),
                     u_.GetPath(prefix).front())) {
              if (!MatchArgs(u_, lit.pred.args, *t, v, next)) return false;
            }
            return true;
          }
        }
        if (stats_) ++stats_->full_scans;
        for (const Tuple& t : store_.Tuples(lit.pred.rel)) {
          if (!MatchArgs(u_, lit.pred.args, t, v, next)) return false;
        }
        return true;
      }
      case PlanStep::Kind::kEq: {
        bool lhs_bound = AllVarsBound(lit.lhs, v);
        bool rhs_bound = AllVarsBound(lit.rhs, v);
        if (lhs_bound && rhs_bound) {
          PathId a, b;
          if (!EvalTo(lit.lhs, v, &a) || !EvalTo(lit.rhs, v, &b)) return false;
          if (a != b) return true;
          return next(v);
        }
        if (lhs_bound) {
          PathId a;
          if (!EvalTo(lit.lhs, v, &a)) return false;
          return MatchExpr(u_, lit.rhs, a, v, next);
        }
        if (rhs_bound) {
          PathId b;
          if (!EvalTo(lit.rhs, v, &b)) return false;
          return MatchExpr(u_, lit.lhs, b, v, next);
        }
        status_ = Status::Internal("equation scheduled before being ground");
        return false;
      }
      case PlanStep::Kind::kNegPred: {
        Tuple t;
        t.reserve(lit.pred.args.size());
        for (const PathExpr& e : lit.pred.args) {
          PathId p;
          if (!EvalTo(e, v, &p)) return false;
          t.push_back(p);
        }
        // The negated relation is complete here (stratified negation): it is
        // either EDB or defined in an earlier stratum, so the store holds
        // all of its facts.
        if (store_.Contains(lit.pred.rel, t)) return true;
        return next(v);
      }
      case PlanStep::Kind::kNegEq: {
        PathId a, b;
        if (!EvalTo(lit.lhs, v, &a) || !EvalTo(lit.rhs, v, &b)) return false;
        if (a == b) return true;
        return next(v);
      }
    }
    return true;
  }

  bool EvalTo(const PathExpr& e, const Valuation& v, PathId* out) {
    Result<PathId> r = EvalExpr(u_, e, v);
    if (!r.ok()) {
      status_ = r.status();
      return false;
    }
    *out = *r;
    return true;
  }

  bool DeriveHead(const RulePlan& plan, const Valuation& v) {
    if (stats_) {
      ++stats_->rule_firings;
      ++CurrentStratumStats()->rule_firings;
    }
    if (++firings_since_poll_ >= kCancelPollInterval) {
      firings_since_poll_ = 0;
      status_ = PollCancel();
      if (!status_.ok()) return false;
    }
    Tuple t;
    t.reserve(plan.rule->head.args.size());
    for (const PathExpr& e : plan.rule->head.args) {
      PathId p;
      if (!EvalTo(e, v, &p)) return false;
      if (u_.PathLength(p) > opts_.max_path_length) {
        status_ = Status::ResourceExhausted(
            "derived path longer than max_path_length = " +
            std::to_string(opts_.max_path_length) +
            " (the program may not terminate)");
        return false;
      }
      t.push_back(p);
    }
    RelId rel = plan.rule->head.rel;
    if (store_.Contains(rel, t)) return true;
    if (pending_[rel].insert(std::move(t)).second) {
      ++derived_;
      if (stats_) {
        ++stats_->derived_facts;
        ++CurrentStratumStats()->derived_facts;
      }
      if (derived_ > opts_.max_facts) {
        status_ = Status::ResourceExhausted(
            "evaluation derived more than max_facts = " +
            std::to_string(opts_.max_facts) +
            " facts (the program may not terminate)");
        return false;
      }
    }
    return true;
  }

  // Moves pending facts into the store; facts that were genuinely new
  // are reported in `*fresh`.
  Status MergePending(std::map<RelId, TupleSet>* fresh) {
    fresh->clear();
    for (auto& [rel, tuples] : pending_) {
      for (const Tuple& t : tuples) {
        if (store_.Add(rel, t)) (*fresh)[rel].insert(t);
      }
    }
    pending_.clear();
    return Status::OK();
  }

  Universe& u_;
  const PreparedProgram& prog_;
  const RunOptions& opts_;
  EvalStats* stats_;
  IndexedInstance store_;
  std::map<RelId, TupleSet> pending_;
  Status status_;
  size_t rounds_ = 0;
  size_t derived_ = 0;
  size_t firings_since_poll_ = 0;
};

}  // namespace internal

Result<PreparedProgram> Engine::Compile(Universe& u, Program p,
                                        const CompileOptions& opts) {
  return CompileShared(u, std::make_shared<Program>(std::move(p)), opts);
}

Result<PreparedProgram> Engine::CompileBorrowed(Universe& u,
                                                const Program& p,
                                                const CompileOptions& opts) {
  // Aliasing constructor: shares no ownership; the caller keeps `p` alive.
  return CompileShared(
      u, std::shared_ptr<const Program>(std::shared_ptr<void>(), &p), opts);
}

Result<PreparedProgram> Engine::CompileShared(
    Universe& u, std::shared_ptr<const Program> p,
    const CompileOptions& opts) {
  auto start = std::chrono::steady_clock::now();
  if (opts.validate) {
    SEQDL_RETURN_IF_ERROR(ValidateProgram(u, *p));
  }
  PreparedProgram prep(u, std::move(p));
  for (const Stratum& s : prep.program_->strata) {
    std::set<RelId> stratum_idb;
    for (const Rule& r : s.rules) stratum_idb.insert(r.head.rel);

    PreparedProgram::CompiledStratum compiled;
    for (const Rule& r : s.rules) {
      SEQDL_ASSIGN_OR_RETURN(RulePlan plan,
                             PlanRule(u, r, opts.reorder_scans));
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        const PlanStep& st = plan.steps[i];
        if (st.kind == PlanStep::Kind::kScan &&
            stratum_idb.count(r.body[st.lit_idx].pred.rel)) {
          plan.recursive_scan_steps.push_back(i);
        }
      }
      compiled.plans.push_back(std::move(plan));
    }
    prep.strata_.push_back(std::move(compiled));
  }
  prep.compile_seconds_ = SecondsSince(start);
  return prep;
}

Result<Instance> PreparedProgram::Run(const Instance& input,
                                      const RunOptions& opts,
                                      EvalStats* stats) const {
  auto start = std::chrono::steady_clock::now();
  if (stats) {
    *stats = EvalStats{};
    stats->compile_seconds = compile_seconds_;
  }
  internal::Executor exec(*universe_, *this, opts, stats);
  Result<Instance> out = exec.Run(input);
  if (stats) stats->run_seconds = SecondsSince(start);
  return out;
}

Result<Instance> PreparedProgram::RunQuery(const Instance& input,
                                           RelId output,
                                           const RunOptions& opts,
                                           EvalStats* stats) const {
  SEQDL_ASSIGN_OR_RETURN(Instance full, Run(input, opts, stats));
  return full.Project({output});
}

}  // namespace seqdl
