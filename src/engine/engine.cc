#include "src/engine/engine.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "src/analysis/safety.h"
#include "src/engine/index.h"
#include "src/engine/match.h"
#include "src/syntax/printer.h"

namespace seqdl {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Sentinel for "no scan step is restricted to the delta this pass".
constexpr size_t kNoDeltaStep = static_cast<size_t>(-1);

/// How many rule firings pass between cancellation polls.
constexpr size_t kCancelPollInterval = 256;

/// One explain line for a plan step: the access path the executor will
/// take, the planner's selectivity estimate (when compiled with
/// statistics), and whether measured data — rather than a heuristic or an
/// unknown-relation prior — made the choice.
std::string DescribeStep(const Universe& u, const RulePlan& plan,
                         size_t step_idx) {
  const PlanStep& step = plan.steps[step_idx];
  const Literal& lit = plan.rule->body[step.lit_idx];
  std::string out;
  switch (step.kind) {
    case PlanStep::Kind::kScan: {
      out = "scan " + u.RelName(lit.pred.rel) + ": ";
      if (step.index_arg >= 0) {
        out += "whole-value key col " + std::to_string(step.index_arg);
      } else if (step.prefix_arg >= 0) {
        out += "first-value key col " + std::to_string(step.prefix_arg) +
               " (prefix " + FormatExpr(u, step.prefix_expr) + ")";
      } else if (step.suffix_arg >= 0) {
        out += "last-value key col " + std::to_string(step.suffix_arg) +
               " (suffix " + FormatExpr(u, step.suffix_expr) + ")";
      } else {
        out += "full scan";
      }
      if (step.est_cost >= 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), ", est %.2f", step.est_cost);
        out += buf;
        out += step.stats_chosen ? " [stats]" : " [prior]";
      }
      for (size_t rec : plan.recursive_scan_steps) {
        if (rec == step_idx) {
          out += " [delta]";
          break;
        }
      }
      return out;
    }
    case PlanStep::Kind::kEq:
      return "eq " + FormatLiteral(u, lit);
    case PlanStep::Kind::kNegPred:
    case PlanStep::Kind::kNegEq:
      return "check " + FormatLiteral(u, lit);
  }
  return out;
}

}  // namespace

namespace internal {

// One run of a prepared program. Owns all mutable evaluation state (the
// private IDB overlay, pending facts, deltas), so a (const)
// PreparedProgram can execute any number of runs — concurrently, when
// they share an immutable BaseStore: the base is only ever read, and the
// Universe interns with synchronization.
class Executor {
 public:
  Executor(Universe& u, const PreparedProgram& prog, const RunOptions& opts,
           EvalStats* stats)
      : u_(u), prog_(prog), opts_(opts), stats_(stats) {}

  // Evaluates over the (shared, never mutated) base segments; returns the
  // derived IDB overlay only. Segments are scanned in stack order (oldest
  // epoch first), which preserves the single-base enumeration order
  // bit-for-bit when there is one segment. `kinds` (empty = all facts)
  // makes tombstoned facts invisible throughout.
  Result<Instance> Run(std::span<const BaseStore* const> segments,
                       std::span<const SegmentKind> kinds) {
    store_ = LayeredStore(u_, segments, kinds);
    for (const auto& stratum : StrataOf(prog_)) {
      if (stats_) stats_->per_stratum.emplace_back();
      SEQDL_RETURN_IF_ERROR(EvalStratum(stratum));
    }
    return store_.TakeOverlay();
  }

  // Incremental maintenance over the full current segment stack: adopts
  // the stored view where sound, delta-evaluates the net additions, runs
  // DRed deletion + re-derivation for the net retractions, and recomputes
  // exactly the strata reading a changed relation through negation (see
  // PreparedProgram::RunDelta's contract).
  Result<PreparedProgram::DeltaRun> RunDelta(
      std::span<const BaseStore* const> segments,
      std::span<const SegmentKind> kinds, size_t base_prefix,
      const Instance& view, const SupportLookup& stored_support) {
    store_ = LayeredStore(u_, segments, kinds);
    std::span<const BaseStore* const> base_span = segments.first(base_prefix);
    std::span<const BaseStore* const> delta_span =
        segments.subspan(base_prefix);
    std::span<const SegmentKind> base_kinds =
        kinds.empty() ? kinds : kinds.first(base_prefix);
    std::span<const SegmentKind> delta_kinds =
        kinds.empty() ? kinds : kinds.subspan(base_prefix);

    // Net effect of the delta suffix, fact by fact: visibility before
    // (base prefix only) vs after (full stack) — a fact appended then
    // retracted inside the window, or the reverse, nets out entirely.
    // `added` and `removed` then cascade down the strata, growing by
    // what each stratum derives or deletes.
    std::map<RelId, TupleSet> added, removed;
    for (const BaseStore* seg : delta_span) {
      const Instance& inst = seg->instance();
      for (RelId rel : inst.Relations()) {
        for (const Tuple& t : inst.Tuples(rel)) {
          bool was = VisibleIn(base_span, base_kinds, rel, t);
          bool is = store_.ContainsBase(rel, t);
          if (was == is) continue;
          if (is) {
            // A view fact the suffix promoted to EDB is not an addition:
            // the relation held the tuple before (as a derived fact), so
            // no new consequences can follow — and re-enumerating its
            // firings would inflate the stored support past the true
            // derivation count, which DRed can never recover from.
            if (!view.Contains(rel, t)) added[rel].insert(t);
          } else {
            removed[rel].insert(t);
          }
        }
      }
    }
    if (stats_) {
      for (const auto& [rel, ts] : added) {
        stats_->delta_seed_facts += ts.size();
      }
      for (const auto& [rel, ts] : removed) {
        stats_->delta_seed_facts += ts.size();
      }
    }

    PreparedProgram::DeltaRun out;
    const std::vector<Stratum>& strata = prog_.program().strata;
    for (size_t s = 0; s < strata.size(); ++s) {
      const CompiledStratum& compiled = StrataOf(prog_)[s];
      if (stats_) stats_->per_stratum.emplace_back();

      // Only a changed *negated* input forces a wholesale recompute (a
      // gained fact can invalidate stored tuples, a lost one can enable
      // new ones, and delta passes express neither). A shrunk positive
      // input no longer does — the DRed deletion phase handles it in
      // place; additions take the classic delta pass.
      bool recompute = false;
      for (const Rule& r : strata[s].rules) {
        for (const Literal& l : r.body) {
          if (!l.is_predicate() || !l.negated) continue;
          if (added.count(l.pred.rel) != 0 || removed.count(l.pred.rel) != 0) {
            recompute = true;
          }
        }
      }

      std::set<RelId> heads;
      for (const Rule& r : strata[s].rules) heads.insert(r.head.rel);

      // Everything this stratum's evaluation accepts into the overlay,
      // recorded by MergePending for the cascade bookkeeping below.
      Instance stratum_added;
      stratum_added_ = &stratum_added;
      Status st;
      if (!recompute) {
        // Adopt the stored facts wholesale, then delete, re-derive, and
        // delta-evaluate. The view holds no fact of the segments it was
        // computed over (a view never contains EDB-visible facts, and a
        // folded segment keeps its newest publish stamp, so every
        // non-delta segment predates the view), which lets Adopt dedupe
        // against the delta segments only — view facts the suffix
        // promoted to EDB drop out of the overlay exactly as a cold run
        // would leave them, and promoted-then-retracted ones stay view
        // state (visible membership, not raw membership).
        for (RelId rel : heads) {
          store_.Adopt(rel, view.Tuples(rel), delta_span, delta_kinds);
        }
        st = Status::OK();
        if (!removed.empty()) {
          st = DeleteAndRederive(compiled, heads, &removed, stored_support,
                                 &out.decrements);
        }
        if (st.ok()) st = EvalStratumDelta(compiled, added);
      } else {
        st = EvalStratum(compiled);
      }
      stratum_added_ = nullptr;
      SEQDL_RETURN_IF_ERROR(st);

      if (!recompute) {
        if (stats_) ++stats_->strata_delta_maintained;
        for (RelId rel : stratum_added.Relations()) {
          TupleSet& ts = added[rel];
          for (const Tuple& t : stratum_added.Tuples(rel)) ts.insert(t);
        }
      } else {
        if (stats_) ++stats_->strata_recomputed;
        out.recomputed_strata.push_back(s);
        // Diff the fresh result against the stored facts; additions and
        // retractions join their respective cascades. A stored fact that
        // is EDB-visible in the new stack merely moved layers; a fresh
        // fact that was EDB-visible at the view's epoch (its occurrence
        // since retracted, but still derivable) never left the relation.
        for (RelId rel : heads) {
          const TupleSet& fresh = stratum_added.Tuples(rel);
          const TupleSet& stored = view.Tuples(rel);
          for (const Tuple& t : stored) {
            if (fresh.count(t) != 0 || store_.ContainsBase(rel, t)) continue;
            removed[rel].insert(t);
          }
          for (const Tuple& t : fresh) {
            if (stored.count(t) != 0) continue;
            if (VisibleIn(base_span, base_kinds, rel, t)) continue;
            added[rel].insert(t);
          }
        }
      }
    }
    out.idb = store_.TakeOverlay();
    return out;
  }

 private:
  using CompiledStratum = PreparedProgram::CompiledStratum;

  static const std::vector<CompiledStratum>& StrataOf(
      const PreparedProgram& prog) {
    return prog.strata_;
  }

  StratumStats* CurrentStratumStats() {
    return stats_ ? &stats_->per_stratum.back() : nullptr;
  }

  Status EvalStratum(const CompiledStratum& stratum) {
    if (!opts_.seminaive) return EvalStratumNaive(stratum);

    // Round 0: all rules, full scans.
    std::map<RelId, TupleSet> delta;
    pending_.clear();
    for (const RulePlan& plan : stratum.plans) {
      SEQDL_RETURN_IF_ERROR(ApplyRule(plan, kNoDeltaStep, nullptr, nullptr));
    }
    SEQDL_RETURN_IF_ERROR(MergePending(&delta));

    // Delta rounds: re-run each rule once per recursive scan occurrence,
    // with that occurrence restricted to the previous round's delta. The
    // round's deltas are immutable while the round runs, so one
    // DeltaIndexer per round can index the large ones (see index.h).
    while (!delta.empty()) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      DeltaIndexer delta_idx(u_, delta, opts_.delta_index_threshold);
      for (const RulePlan& plan : stratum.plans) {
        for (size_t step_idx : plan.recursive_scan_steps) {
          SEQDL_RETURN_IF_ERROR(ApplyRule(plan, step_idx, &delta, &delta_idx));
        }
      }
      std::map<RelId, TupleSet> new_delta;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_delta));
      delta = std::move(new_delta);
    }
    return Status::OK();
  }

  // One maintenance pass for a stratum whose stored facts were adopted:
  // each rule re-runs once per scan step over a changed relation, with
  // that step restricted to the changed set (the appended EDB facts plus
  // everything earlier strata added — the other steps see the full
  // store, which already includes both the new segments and the adopted
  // view). The standard recursive delta rounds then close the fixpoint
  // over whatever the pass derived. Exactly the semi-naive argument:
  // every new derivation must use at least one changed fact somewhere,
  // and each such use is enumerated by the application restricting that
  // occurrence.
  Status EvalStratumDelta(const CompiledStratum& stratum,
                          const std::map<RelId, TupleSet>& changed) {
    std::map<RelId, TupleSet> delta;
    pending_.clear();
    SEQDL_RETURN_IF_ERROR(BumpRound());
    DeltaIndexer changed_idx(u_, changed, opts_.delta_index_threshold);
    for (size_t r = 0; r < stratum.plans.size(); ++r) {
      const RulePlan& plan = stratum.plans[r];
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        const PlanStep& st = plan.steps[i];
        if (st.kind != PlanStep::Kind::kScan) continue;
        if (changed.count(plan.rule->body[st.lit_idx].pred.rel) == 0) continue;
        SEQDL_RETURN_IF_ERROR(ApplyRestricted(stratum, r, st.lit_idx, i,
                                              &changed, &changed_idx));
      }
    }
    SEQDL_RETURN_IF_ERROR(MergePending(&delta));

    while (!delta.empty()) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      DeltaIndexer delta_idx(u_, delta, opts_.delta_index_threshold);
      for (size_t r = 0; r < stratum.plans.size(); ++r) {
        const RulePlan& plan = stratum.plans[r];
        for (size_t step_idx : plan.recursive_scan_steps) {
          SEQDL_RETURN_IF_ERROR(
              ApplyRestricted(stratum, r, plan.steps[step_idx].lit_idx,
                              step_idx, &delta, &delta_idx));
        }
      }
      std::map<RelId, TupleSet> new_delta;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_delta));
      delta = std::move(new_delta);
    }
    return Status::OK();
  }

  // Applies rule `r` with the scan of body literal `lit_idx` restricted
  // to `*delta`, through the delta-first plan variant when the compiler
  // built one (so the restricted scan is the outermost loop and the
  // application costs O(|delta|) probes, not an outer full scan).
  // `fallback_step` is the restricted literal's step in the base plan,
  // used when no variant exists.
  Status ApplyRestricted(const CompiledStratum& stratum, size_t r,
                         size_t lit_idx, size_t fallback_step,
                         const std::map<RelId, TupleSet>* delta,
                         DeltaIndexer* delta_idx) {
    if (r < stratum.delta_plans.size()) {
      auto it = stratum.delta_plans[r].find(lit_idx);
      if (it != stratum.delta_plans[r].end()) {
        return ApplyRule(it->second, 0, delta, delta_idx);
      }
    }
    return ApplyRule(stratum.plans[r], fallback_step, delta, delta_idx);
  }

  // Visibility of `t` in a (segments, kinds) stack prefix: the newest
  // occurrence wins, and it is visible iff that occurrence is a fact
  // segment (empty kinds = all facts).
  static bool VisibleIn(std::span<const BaseStore* const> segments,
                        std::span<const SegmentKind> kinds, RelId rel,
                        const Tuple& t) {
    for (size_t i = segments.size(); i-- > 0;) {
      if (segments[i]->Contains(rel, t)) {
        return kinds.empty() || kinds[i] == SegmentKind::kFacts;
      }
    }
    return false;
  }

  static bool InMap(const std::map<RelId, TupleSet>& m, RelId rel,
                    const Tuple& t) {
    auto it = m.find(rel);
    return it != m.end() && it->second.count(t) != 0;
  }

  // Head relations that can reach themselves through positive body
  // literals of this stratum's own heads — the rels whose stored support
  // counts may include *cyclic* firings (P supported by Q, Q by P).
  // Counting deletion is exact only for acyclic support: a cyclic firing
  // inflates the count with a derivation that dies together with the
  // tuple, so a count-gated delete would leave the pair propping each
  // other up forever. These rels fall back to classic DRed — delete on
  // the first decrement, let re-derivation rescue the true survivors.
  static std::set<RelId> CyclicHeads(const CompiledStratum& stratum,
                                     const std::set<RelId>& heads) {
    std::map<RelId, std::set<RelId>> edges;
    for (const RulePlan& plan : stratum.plans) {
      std::set<RelId>& out = edges[plan.rule->head.rel];
      for (const Literal& l : plan.rule->body) {
        if (!l.is_predicate() || l.negated) continue;
        if (heads.count(l.pred.rel)) out.insert(l.pred.rel);
      }
    }
    std::set<RelId> cyclic;
    for (RelId start : heads) {
      std::set<RelId> seen;
      std::vector<RelId> stack(edges[start].begin(), edges[start].end());
      bool found = false;
      while (!found && !stack.empty()) {
        RelId cur = stack.back();
        stack.pop_back();
        if (cur == start) {
          found = true;
          break;
        }
        if (!seen.insert(cur).second) continue;
        stack.insert(stack.end(), edges[cur].begin(), edges[cur].end());
      }
      if (found) cyclic.insert(start);
    }
    return cyclic;
  }

  // The DRed deletion + re-derivation phases for one maintained stratum.
  // `removed` is the accumulated retraction cascade (EDB facts the delta
  // suffix retracted plus everything upstream strata deleted); tuples
  // this stratum deletes for good join it, and retracted facts this
  // stratum re-derives leave it. Cumulative support decrements are
  // reported through `decrements` for the caller to fold into the
  // stored counts.
  Status DeleteAndRederive(const CompiledStratum& stratum,
                           const std::set<RelId>& heads,
                           std::map<RelId, TupleSet>* removed,
                           const SupportLookup& stored_support,
                           SupportCounts* decrements) {
    // --- Deletion: cascade support decrements until no tuple dies. ---
    // Round 0 processes everything removed so far; later rounds process
    // the tuples the previous round deleted. Dead facts stay enumerable
    // as *ghosts* at non-restricted scan positions, so a derivation
    // joining several dead facts is still found from each one's
    // restricted pass (SkipCount then attributes it to exactly one).
    std::map<RelId, TupleSet> dminus = *removed;
    std::map<RelId, TupleSet> deleted;  // this stratum's deletions
    const std::set<RelId> cyclic = CyclicHeads(stratum, heads);
    ghosts_removed_ = removed;
    ghosts_deleted_ = &deleted;
    Status st = Status::OK();
    while (st.ok() && !dminus.empty()) {
      st = BumpRound();
      if (!st.ok()) break;
      dec_round_.clear();
      decrement_mode_ = true;
      DeltaIndexer didx(u_, dminus, opts_.delta_index_threshold);
      for (size_t r = 0; r < stratum.plans.size() && st.ok(); ++r) {
        const RulePlan& plan = stratum.plans[r];
        for (size_t i = 0; i < plan.steps.size() && st.ok(); ++i) {
          const PlanStep& step = plan.steps[i];
          if (step.kind != PlanStep::Kind::kScan) continue;
          if (dminus.count(plan.rule->body[step.lit_idx].pred.rel) == 0) {
            continue;
          }
          st = ApplyRestricted(stratum, r, step.lit_idx, i, &dminus, &didx);
        }
      }
      decrement_mode_ = false;
      if (!st.ok()) break;

      // Apply the round's decrements, deferred so a removal never
      // invalidates an enumeration in flight. The compare saturates: a
      // high-fan-in tuple decremented past its stored count cannot wrap
      // back to "supported" — it dies here, and the re-derivation pass
      // below decides whether it survives. An unknown stored count
      // (lookup returns 0) is treated as 1, as is any count for a
      // relation in `cyclic`: both fall back to classic over-deleting
      // DRed, because a cyclic stored count can be propped up entirely
      // by firings that die with the tuple itself.
      std::map<RelId, TupleSet> next_dminus;
      for (const auto& [rel, tuples] : dec_round_) {
        for (const auto& [t, n] : tuples) {
          uint32_t& cum = (*decrements)[rel][t];
          cum = cum > UINT32_MAX - n ? UINT32_MAX : cum + n;
          if (stats_) stats_->dred_decrements += n;
          if (!store_.overlay().Contains(rel, t)) continue;
          uint32_t stored = stored_support ? stored_support(rel, t) : 0;
          if (stored == 0 || cyclic.count(rel) != 0) stored = 1;
          if (cum < stored) continue;
          store_.RemoveOverlay(rel, t);
          deleted[rel].insert(t);
          next_dminus[rel].insert(t);
          if (stats_) ++stats_->dred_over_deleted;
        }
      }
      dminus = std::move(next_dminus);
    }
    ghosts_removed_ = nullptr;
    ghosts_deleted_ = nullptr;
    SEQDL_RETURN_IF_ERROR(st);

    // --- Re-derivation: rescue what still has a proof, to a fixpoint
    // (a rescued tuple can be the missing body atom of another). The
    // candidates are every deleted tuple plus the retracted EDB facts of
    // this stratum's head relations — a fact can be both asserted and
    // derivable, and retracting its EDB occurrence must not lose the
    // derivation.
    std::vector<std::pair<RelId, Tuple>> candidates;
    for (const auto& [rel, ts] : deleted) {
      for (const Tuple& t : ts) candidates.emplace_back(rel, t);
    }
    for (RelId rel : heads) {
      auto it = removed->find(rel);
      if (it == removed->end()) continue;
      for (const Tuple& t : it->second) {
        if (!InMap(deleted, rel, t)) candidates.emplace_back(rel, t);
      }
    }
    std::vector<bool> rescued(candidates.size(), false);
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (rescued[c]) continue;
        SEQDL_ASSIGN_OR_RETURN(
            bool ok,
            CheckDerivable(stratum, candidates[c].first, candidates[c].second));
        if (!ok) continue;
        // Back into the overlay it goes (a candidate is never visible in
        // the base stack). Survivors do not re-count their firings: the
        // insertion phase counts any genuinely new derivations, and the
        // stored-count floor of one covers the rest — undercounting only
        // risks a future over-delete, which this very pass repairs.
        store_.Add(candidates[c].first, candidates[c].second);
        rescued[c] = true;
        progress = true;
        if (stats_) ++stats_->dred_re_derived;
      }
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      const auto& [rel, t] = candidates[c];
      bool was_deleted = InMap(deleted, rel, t);
      if (rescued[c]) {
        if (!was_deleted) {
          // A retracted EDB fact that re-derives: the relation never
          // lost it, so downstream strata must not see a removal.
          auto it = removed->find(rel);
          if (it != removed->end()) {
            it->second.erase(t);
            if (it->second.empty()) removed->erase(it);
          }
        }
      } else if (was_deleted) {
        (*removed)[rel].insert(t);
      }
    }
    return Status::OK();
  }

  // Does (rel, t) still have a derivation from the current store? Runs
  // each candidate rule's body with the head matched against `t`
  // (MatchArgs enumerates every way the head expressions can produce
  // it), unwinding on the first satisfying valuation. Uses the
  // head-bound plan variants: the head match binds the head's variables
  // before the body starts, so the body scans key on them instead of
  // running the cold plan's unbound step order (whose first scan is a
  // full sweep of the relation — per candidate).
  Result<bool> CheckDerivable(const CompiledStratum& stratum, RelId rel,
                              const Tuple& t) {
    SEQDL_RETURN_IF_ERROR(PollCancel());
    for (const RulePlan& plan : stratum.check_plans) {
      if (plan.rule->head.rel != rel) continue;
      check_mode_ = true;
      check_found_ = false;
      status_ = Status::OK();
      Valuation v;
      MatchArgs(u_, plan.rule->head.args, t, v, [&](Valuation& v2) {
        return ExecuteStep(plan, 0, v2, kNoDeltaStep, nullptr, nullptr);
      });
      check_mode_ = false;
      SEQDL_RETURN_IF_ERROR(status_);
      if (check_found_) return true;
    }
    return false;
  }

  Status EvalStratumNaive(const CompiledStratum& stratum) {
    while (true) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      for (const RulePlan& plan : stratum.plans) {
        SEQDL_RETURN_IF_ERROR(ApplyRule(plan, kNoDeltaStep, nullptr, nullptr));
      }
      std::map<RelId, TupleSet> new_facts;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_facts));
      if (new_facts.empty()) return Status::OK();
    }
  }

  Status BumpRound() {
    SEQDL_RETURN_IF_ERROR(PollCancel());
    if (stats_) {
      ++stats_->rounds;
      ++CurrentStratumStats()->rounds;
    }
    if (++rounds_ > opts_.max_iterations) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_iterations = " +
          std::to_string(opts_.max_iterations) +
          " (the program may not terminate)");
    }
    return Status::OK();
  }

  Status PollCancel() {
    if (opts_.cancel && opts_.cancel()) {
      return Status::Cancelled("evaluation cancelled by RunOptions::cancel");
    }
    return Status::OK();
  }

  // Runs one rule; derived facts go to pending_. If `delta_step` is not
  // kNoDeltaStep, that scan step enumerates `*delta` instead of the store
  // (probing `*delta_idx` when the delta is large enough to be indexed).
  Status ApplyRule(const RulePlan& plan, size_t delta_step,
                   const std::map<RelId, TupleSet>* delta,
                   DeltaIndexer* delta_idx) {
    Valuation v;
    status_ = Status::OK();
    // Once-per-firing attribution (SkipCount) needs the tuple each body
    // literal matched; track them whenever a restricted pass is counting
    // — support increments under semi-naive, or deletion decrements.
    bool counting = delta != nullptr && delta_step != kNoDeltaStep &&
                    (decrement_mode_ ||
                     (opts_.support != nullptr && opts_.seminaive));
    if (counting) {
      track_matched_ = true;
      count_delta_ = delta;
      count_delta_lit_ = plan.steps[delta_step].lit_idx;
      matched_.assign(plan.rule->body.size(), nullptr);
    }
    ExecuteStep(plan, 0, v, delta_step, delta, delta_idx);
    track_matched_ = false;
    count_delta_ = nullptr;
    count_delta_lit_ = kNoDeltaStep;
    return status_;
  }

  // True when the current firing is (or will be) counted from a
  // different restricted pass — the canonical attribution that keeps
  // support counts at exactly one increment (and the deletion phase at
  // exactly one decrement) per firing. A pass restricted to body literal
  // i skips the firing when an earlier literal j < i matched a tuple of
  // the current delta: the pass restricted to j enumerates the same
  // firing and counts it there. Deletion passes additionally skip when
  // any other literal matched a fact that died in an *earlier* round —
  // the firing was already decremented when that fact died (its other
  // atoms were all store-visible or ghosts then too).
  bool SkipCount(const RulePlan& plan) {
    if (count_delta_ == nullptr) return false;
    const std::vector<Literal>& body = plan.rule->body;
    for (size_t j = 0; j < body.size() && j < matched_.size(); ++j) {
      if (j == count_delta_lit_) continue;
      const Literal& l = body[j];
      if (!l.is_predicate() || l.negated) continue;
      const Tuple* m = matched_[j];
      if (m == nullptr) continue;
      if (j < count_delta_lit_ && InMap(*count_delta_, l.pred.rel, *m)) {
        return true;
      }
      if (decrement_mode_ && IsOldGhost(l.pred.rel, *m)) return true;
    }
    return false;
  }

  // A fact that died in an earlier deletion round: a ghost that is not
  // part of the current round's deletion set.
  bool IsOldGhost(RelId rel, const Tuple& t) const {
    if (count_delta_ != nullptr && InMap(*count_delta_, rel, t)) return false;
    return (ghosts_removed_ != nullptr && InMap(*ghosts_removed_, rel, t)) ||
           (ghosts_deleted_ != nullptr && InMap(*ghosts_deleted_, rel, t));
  }

  // Returns false to abort enumeration (on error).
  bool ExecuteStep(const RulePlan& plan, size_t step_idx, Valuation& v,
                   size_t delta_step, const std::map<RelId, TupleSet>* delta,
                   DeltaIndexer* delta_idx) {
    if (!status_.ok()) return false;
    if (step_idx == plan.steps.size()) return DeriveHead(plan, v);

    const PlanStep& step = plan.steps[step_idx];
    const Literal& lit = plan.rule->body[step.lit_idx];
    auto next = [&](Valuation& v2) {
      return ExecuteStep(plan, step_idx + 1, v2, delta_step, delta,
                         delta_idx);
    };
    // Enumerate one store tuple, recording it when the canonical-count
    // machinery needs to know which tuple each literal matched.
    auto match_one = [&](const Tuple& t) {
      if (track_matched_) matched_[step.lit_idx] = &t;
      return MatchArgs(u_, lit.pred.args, t, v, next);
    };
    auto match_all = [&](const std::vector<const Tuple*>& bucket) {
      for (const Tuple* t : bucket) {
        if (!match_one(*t)) return false;
      }
      return true;
    };
    // Enumerate a fact segment's probe bucket, skipping tuples a newer
    // tombstone segment shadows (the common stack has no tombstones, so
    // the fast path is the plain bucket walk).
    auto match_layer = [&](const SegmentLayer& layer,
                           const std::vector<const Tuple*>& bucket) {
      if (layer.shadows.empty()) return match_all(bucket);
      for (const Tuple* t : bucket) {
        if (layer.Shadowed(lit.pred.rel, *t)) continue;
        if (!match_one(*t)) return false;
      }
      return true;
    };

    switch (step.kind) {
      case PlanStep::Kind::kScan: {
        if (step_idx == delta_step) {
          return ScanDelta(step, lit, v, delta, delta_idx, match_all,
                           match_one);
        }
        bool ok = [&] {
          StepKey key;
          if (opts_.use_index && !EvalStepKey(step, lit, v, &key)) {
            return false;
          }
          switch (key.kind) {
            case StepKey::Kind::kWhole:
              // An arity-1 relation's whole-value key IS the tuple:
              // answer with the layers' hash membership test instead of
              // materializing the whole-value column index — check plans
              // and ground-literal joins issue point lookups here, and
              // the index would be rebuilt from scratch every refresh
              // just to answer them.
              if (lit.pred.args.size() == 1) {
                if (stats_) ++stats_->index_probes;
                Tuple probe{key.whole};
                if (!store_.Contains(lit.pred.rel, probe)) return true;
                return match_one(probe);
              }
              // The planner proved this argument ground under every
              // valuation reaching the step: probe the whole-value column
              // index of every layer (shared fact segments in epoch
              // order, then the private overlay).
              if (stats_) ++stats_->index_probes;
              for (const SegmentLayer& layer : store_.layers()) {
                if (!match_layer(layer, layer.store->Probe(lit.pred.rel,
                                                           key.col,
                                                           key.whole))) {
                  return false;
                }
              }
              return match_all(store_.overlay().Probe(lit.pred.rel, key.col,
                                                      key.whole));
            case StepKey::Kind::kFirst:
              // A leading prefix of this argument is ground: a matching
              // tuple must start with the prefix's first value, so probe
              // the first-value index (MatchArgs still filters exactly).
              if (stats_) ++stats_->prefix_probes;
              for (const SegmentLayer& layer : store_.layers()) {
                if (!match_layer(layer,
                                 layer.store->ProbeFirst(lit.pred.rel, key.col,
                                                         key.value))) {
                  return false;
                }
              }
              return match_all(store_.overlay().ProbeFirst(lit.pred.rel,
                                                           key.col,
                                                           key.value));
            case StepKey::Kind::kLast:
              // Symmetric: a trailing suffix is ground (`$x ++ a`); a
              // matching tuple must end with the suffix's last value, so
              // probe the last-value index.
              if (stats_) ++stats_->suffix_probes;
              for (const SegmentLayer& layer : store_.layers()) {
                if (!match_layer(layer,
                                 layer.store->ProbeLast(lit.pred.rel, key.col,
                                                        key.value))) {
                  return false;
                }
              }
              return match_all(store_.overlay().ProbeLast(lit.pred.rel,
                                                          key.col, key.value));
            case StepKey::Kind::kNone:
              break;
          }
          if (stats_) ++stats_->full_scans;
          for (const SegmentLayer& layer : store_.layers()) {
            for (const Tuple& t : layer.store->Tuples(lit.pred.rel)) {
              if (!layer.shadows.empty() && layer.Shadowed(lit.pred.rel, t)) {
                continue;
              }
              if (!match_one(t)) return false;
            }
          }
          for (const Tuple& t : store_.overlay().Tuples(lit.pred.rel)) {
            if (!match_one(t)) return false;
          }
          return true;
        }();
        if (!ok) return false;
        // Deletion passes additionally enumerate the dead facts
        // (ghosts): a derivation whose other body atoms are already dead
        // must still be found so its head is decremented from this
        // restricted pass too.
        if (decrement_mode_) return ScanGhosts(lit, match_one);
        return true;
      }
      case PlanStep::Kind::kEq: {
        bool lhs_bound = AllVarsBound(lit.lhs, v);
        bool rhs_bound = AllVarsBound(lit.rhs, v);
        if (lhs_bound && rhs_bound) {
          PathId a, b;
          if (!EvalTo(lit.lhs, v, &a) || !EvalTo(lit.rhs, v, &b)) return false;
          if (a != b) return true;
          return next(v);
        }
        if (lhs_bound) {
          PathId a;
          if (!EvalTo(lit.lhs, v, &a)) return false;
          return MatchExpr(u_, lit.rhs, a, v, next);
        }
        if (rhs_bound) {
          PathId b;
          if (!EvalTo(lit.rhs, v, &b)) return false;
          return MatchExpr(u_, lit.lhs, b, v, next);
        }
        status_ = Status::Internal("equation scheduled before being ground");
        return false;
      }
      case PlanStep::Kind::kNegPred: {
        Tuple t;
        t.reserve(lit.pred.args.size());
        for (const PathExpr& e : lit.pred.args) {
          PathId p;
          if (!EvalTo(e, v, &p)) return false;
          t.push_back(p);
        }
        // The negated relation is complete here (stratified negation): it is
        // either EDB or defined in an earlier stratum, so the store holds
        // all of its facts.
        if (store_.Contains(lit.pred.rel, t)) return true;
        return next(v);
      }
      case PlanStep::Kind::kNegEq: {
        PathId a, b;
        if (!EvalTo(lit.lhs, v, &a) || !EvalTo(lit.rhs, v, &b)) return false;
        if (a == b) return true;
        return next(v);
      }
    }
    return true;
  }

  // The evaluated index key of a scan step under the current valuation —
  // the single probe-selection logic shared by the store path
  // (ExecuteStep) and the delta path (ScanDelta), which used to mirror
  // it separately.
  struct StepKey {
    enum class Kind : uint8_t { kNone, kWhole, kFirst, kLast };

    Kind kind = Kind::kNone;
    uint32_t col = 0;
    PathId whole = kEmptyPath;  // kWhole: the ground argument's path.
    Value value;                // kFirst/kLast: the prefix/suffix end value.
  };

  // Evaluates the step's planned key: the fully ground argument
  // (whole-value), or the first/last value of the ground prefix/suffix.
  // kNone = the step has no key, or the prefix/suffix evaluated to eps (a
  // bound path variable holding the empty path constrains nothing) — scan
  // everything. Returns false on expression-evaluation error (status_
  // set).
  bool EvalStepKey(const PlanStep& step, const Literal& lit,
                   const Valuation& v, StepKey* key) {
    if (step.index_arg >= 0) {
      key->col = static_cast<uint32_t>(step.index_arg);
      key->kind = StepKey::Kind::kWhole;
      return EvalTo(lit.pred.args[static_cast<size_t>(step.index_arg)], v,
                    &key->whole);
    }
    if (step.prefix_arg >= 0) {
      PathId prefix;
      if (!EvalTo(step.prefix_expr, v, &prefix)) return false;
      if (prefix != kEmptyPath) {
        key->col = static_cast<uint32_t>(step.prefix_arg);
        key->kind = StepKey::Kind::kFirst;
        key->value = u_.GetPath(prefix).front();
      }
      return true;
    }
    if (step.suffix_arg >= 0) {
      PathId suffix;
      if (!EvalTo(step.suffix_expr, v, &suffix)) return false;
      if (suffix != kEmptyPath) {
        key->col = static_cast<uint32_t>(step.suffix_arg);
        key->kind = StepKey::Kind::kLast;
        key->value = u_.GetPath(suffix).back();
      }
      return true;
    }
    return true;
  }

  // A scan step restricted to the current round's delta. Small deltas are
  // scanned linearly; once a delta reaches RunOptions::delta_index_threshold
  // tuples, the per-round DeltaIndexer answers keyed steps with a bucket
  // probe instead (same key logic as the main store, via EvalStepKey).
  template <typename MatchAll, typename MatchOne>
  bool ScanDelta(const PlanStep& step, const Literal& lit, Valuation& v,
                 const std::map<RelId, TupleSet>* delta,
                 DeltaIndexer* delta_idx, MatchAll&& match_all,
                 MatchOne&& match_one) {
    assert(delta != nullptr);
    if (stats_) ++stats_->delta_scans;
    auto it = delta->find(lit.pred.rel);
    if (it == delta->end()) return true;
    if (opts_.use_index && delta_idx != nullptr) {
      StepKey key;
      if (!EvalStepKey(step, lit, v, &key)) return false;
      const std::vector<const Tuple*>* bucket = nullptr;
      switch (key.kind) {
        case StepKey::Kind::kWhole:
          bucket = delta_idx->Probe(lit.pred.rel, key.col, key.whole);
          break;
        case StepKey::Kind::kFirst:
          bucket = delta_idx->ProbeFirst(lit.pred.rel, key.col, key.value);
          break;
        case StepKey::Kind::kLast:
          bucket = delta_idx->ProbeLast(lit.pred.rel, key.col, key.value);
          break;
        case StepKey::Kind::kNone:
          break;
      }
      // nullptr = the delta is below the indexing threshold; fall back to
      // the linear scan.
      if (bucket != nullptr) {
        if (stats_) ++stats_->delta_index_probes;
        return match_all(*bucket);
      }
    }
    for (const Tuple& t : it->second) {
      if (!match_one(t)) return false;
    }
    return true;
  }

  // Enumerates the dead facts of `lit`'s relation that are no longer
  // visible in the store — the deletion phase's ghosts. Linear: the dead
  // sets are small next to the store.
  template <typename MatchOne>
  bool ScanGhosts(const Literal& lit, MatchOne&& match_one) {
    for (const std::map<RelId, TupleSet>* ghosts :
         {ghosts_removed_, ghosts_deleted_}) {
      if (ghosts == nullptr) continue;
      auto it = ghosts->find(lit.pred.rel);
      if (it == ghosts->end()) continue;
      for (const Tuple& t : it->second) {
        // Still visible (e.g. re-asserted by a newer segment): the store
        // walk already enumerated it.
        if (store_.Contains(lit.pred.rel, t)) continue;
        if (!match_one(t)) return false;
      }
    }
    return true;
  }

  bool EvalTo(const PathExpr& e, const Valuation& v, PathId* out) {
    Result<PathId> r = EvalExpr(u_, e, v);
    if (!r.ok()) {
      status_ = r.status();
      return false;
    }
    *out = *r;
    return true;
  }

  bool DeriveHead(const RulePlan& plan, const Valuation& v) {
    if (check_mode_) {
      // Re-derivation check: one satisfying body valuation is enough;
      // unwind the whole enumeration.
      check_found_ = true;
      return false;
    }
    if (stats_) {
      ++stats_->rule_firings;
      ++CurrentStratumStats()->rule_firings;
    }
    if (++firings_since_poll_ >= kCancelPollInterval) {
      firings_since_poll_ = 0;
      status_ = PollCancel();
      if (!status_.ok()) return false;
    }
    Tuple t;
    t.reserve(plan.rule->head.args.size());
    for (const PathExpr& e : plan.rule->head.args) {
      PathId p;
      if (!EvalTo(e, v, &p)) return false;
      if (u_.PathLength(p) > opts_.max_path_length) {
        status_ = Status::ResourceExhausted(
            "derived path longer than max_path_length = " +
            std::to_string(opts_.max_path_length) +
            " (the program may not terminate)");
        return false;
      }
      t.push_back(p);
    }
    RelId rel = plan.rule->head.rel;
    if (decrement_mode_) {
      // One dead derivation found: decrement its head's support, exactly
      // once per firing (SkipCount), and derive nothing.
      if (!SkipCount(plan)) ++dec_round_[rel][std::move(t)];
      return true;
    }
    // Count the derivation event before deduplication: support counts
    // every firing that produces the tuple, not just the first — but
    // exactly once per firing across the restricted passes (SkipCount),
    // and only under semi-naive, where each firing is enumerated in
    // exactly one round. Naive rounds would re-count every firing, so
    // they keep no counts and deletion falls back to classic DRed.
    if (opts_.support != nullptr && opts_.seminaive && !SkipCount(plan)) {
      ++(*opts_.support)[rel][t];
    }
    if (store_.Contains(rel, t)) return true;
    if (pending_[rel].insert(std::move(t)).second) {
      ++derived_;
      if (stats_) {
        ++stats_->derived_facts;
        ++CurrentStratumStats()->derived_facts;
      }
      if (derived_ > opts_.max_facts) {
        status_ = Status::ResourceExhausted(
            "evaluation derived more than max_facts = " +
            std::to_string(opts_.max_facts) +
            " facts (the program may not terminate)");
        return false;
      }
    }
    return true;
  }

  // Moves pending facts into the store; facts that were genuinely new
  // are reported in `*fresh`.
  Status MergePending(std::map<RelId, TupleSet>* fresh) {
    fresh->clear();
    for (auto& [rel, tuples] : pending_) {
      for (const Tuple& t : tuples) {
        if (store_.Add(rel, t)) {
          (*fresh)[rel].insert(t);
          if (stratum_added_ != nullptr) stratum_added_->Add(rel, t);
        }
      }
    }
    pending_.clear();
    return Status::OK();
  }

  Universe& u_;
  const PreparedProgram& prog_;
  const RunOptions& opts_;
  EvalStats* stats_;
  LayeredStore store_;
  /// When non-null (RunDelta), MergePending also records every accepted
  /// fact here — the per-stratum additions the maintenance cascade diffs.
  Instance* stratum_added_ = nullptr;
  std::map<RelId, TupleSet> pending_;
  Status status_;
  size_t rounds_ = 0;
  size_t derived_ = 0;
  size_t firings_since_poll_ = 0;

  // --- DRed state (DeleteAndRederive / CheckDerivable only) ---
  /// Deletion pass: DeriveHead decrements instead of deriving.
  bool decrement_mode_ = false;
  /// Re-derivation check: DeriveHead records a hit and unwinds.
  bool check_mode_ = false;
  bool check_found_ = false;
  /// The current deletion round's decrements, applied at round end.
  SupportCounts dec_round_;
  /// Dead facts enumerable as ghosts during deletion passes: the
  /// accumulated removal cascade and this stratum's deletions so far.
  const std::map<RelId, TupleSet>* ghosts_removed_ = nullptr;
  const std::map<RelId, TupleSet>* ghosts_deleted_ = nullptr;

  // --- Canonical firing attribution (see SkipCount) ---
  bool track_matched_ = false;
  /// The restricted pass's delta and restricted body literal index.
  const std::map<RelId, TupleSet>* count_delta_ = nullptr;
  size_t count_delta_lit_ = kNoDeltaStep;
  /// Per body literal: the store tuple the literal currently matches.
  std::vector<const Tuple*> matched_;
};

}  // namespace internal

Result<PreparedProgram> Engine::Compile(Universe& u, Program p,
                                        const CompileOptions& opts) {
  return CompileShared(u, std::make_shared<Program>(std::move(p)), opts);
}

Result<PreparedProgram> Engine::CompileBorrowed(Universe& u,
                                                const Program& p,
                                                const CompileOptions& opts) {
  // Aliasing constructor: shares no ownership; the caller keeps `p` alive.
  return CompileShared(
      u, std::shared_ptr<const Program>(std::shared_ptr<void>(), &p), opts);
}

Result<PreparedProgram> Engine::CompileShared(
    Universe& u, std::shared_ptr<const Program> p,
    const CompileOptions& opts) {
  auto start = std::chrono::steady_clock::now();
  if (opts.validate) {
    SEQDL_RETURN_IF_ERROR(ValidateProgram(u, *p));
  }
  PreparedProgram prep(u, std::move(p));
  PlannerOptions popts;
  popts.reorder_scans = opts.reorder_scans;
  popts.stats = opts.stats;
  for (const Stratum& s : prep.program_->strata) {
    std::set<RelId> stratum_idb;
    for (const Rule& r : s.rules) stratum_idb.insert(r.head.rel);

    PreparedProgram::CompiledStratum compiled;
    for (const Rule& r : s.rules) {
      SEQDL_ASSIGN_OR_RETURN(RulePlan plan, PlanRule(u, r, popts));
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        const PlanStep& st = plan.steps[i];
        if (st.kind == PlanStep::Kind::kScan &&
            stratum_idb.count(r.body[st.lit_idx].pred.rel)) {
          plan.recursive_scan_steps.push_back(i);
        }
      }
      compiled.plans.push_back(std::move(plan));
      // Delta-first variants for incremental maintenance: one plan per
      // positive literal with that scan forced outermost, so a delta
      // restricted to it never hides behind a full outer scan.
      std::map<size_t, RulePlan> variants;
      for (size_t i = 0; i < r.body.size(); ++i) {
        const Literal& l = r.body[i];
        if (!l.is_predicate() || l.negated) continue;
        PlannerOptions vpopts = popts;
        vpopts.first_lit = static_cast<int>(i);
        SEQDL_ASSIGN_OR_RETURN(RulePlan variant, PlanRule(u, r, vpopts));
        variants.emplace(i, std::move(variant));
      }
      compiled.delta_plans.push_back(std::move(variants));
      // Head-bound variant for DRed re-derivation checks: the check
      // matches the candidate against the head before running the body,
      // so plan the body with the head's variables seeded as bound.
      PlannerOptions cpopts = popts;
      cpopts.head_bound = true;
      SEQDL_ASSIGN_OR_RETURN(RulePlan check, PlanRule(u, r, cpopts));
      compiled.check_plans.push_back(std::move(check));
    }
    prep.strata_.push_back(std::move(compiled));
  }
  // Record the access-path decisions once; runs copy them into
  // EvalStats::plan_decisions.
  for (size_t s = 0; s < prep.strata_.size(); ++s) {
    for (size_t r = 0; r < prep.strata_[s].plans.size(); ++r) {
      const RulePlan& plan = prep.strata_[s].plans[r];
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        if (plan.steps[i].kind != PlanStep::Kind::kScan) continue;
        prep.plan_decisions_.push_back(
            "stratum " + std::to_string(s) + " rule " + std::to_string(r) +
            " step " + std::to_string(i) + ": " + DescribeStep(u, plan, i));
      }
    }
  }
  prep.compile_seconds_ = SecondsSince(start);
  return prep;
}

std::string PreparedProgram::ExplainPlan() const {
  const Universe& u = *universe_;
  std::string out;
  for (size_t s = 0; s < strata_.size(); ++s) {
    out += "stratum " + std::to_string(s) + "\n";
    for (size_t r = 0; r < strata_[s].plans.size(); ++r) {
      const RulePlan& plan = strata_[s].plans[r];
      out += "  rule " + std::to_string(r) + ": " + FormatRule(u, *plan.rule) +
             "\n";
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        out += "    step " + std::to_string(i) + ": " +
               DescribeStep(u, plan, i) + "\n";
      }
    }
  }
  return out;
}

Result<Instance> PreparedProgram::RunOnStack(
    std::span<const BaseStore* const> segments,
    std::span<const SegmentKind> kinds, const RunOptions& opts,
    EvalStats* stats) const {
  auto start = std::chrono::steady_clock::now();
  if (stats) {
    *stats = EvalStats{};
    stats->compile_seconds = compile_seconds_;
    stats->plan_decisions = plan_decisions_;
  }
  internal::Executor exec(*universe_, *this, opts, stats);
  Result<Instance> out = exec.Run(segments, kinds);
  if (stats && opts.collect_derived_stats && out.ok()) {
    stats->derived_stats = ComputeInstanceStats(*universe_, *out);
  }
  if (stats) stats->run_seconds = SecondsSince(start);
  return out;
}

Result<Instance> PreparedProgram::RunOnSegments(
    std::span<const BaseStore* const> segments, const RunOptions& opts,
    EvalStats* stats) const {
  return RunOnStack(segments, {}, opts, stats);
}

Result<PreparedProgram::DeltaRun> PreparedProgram::RunDelta(
    std::span<const BaseStore* const> segments,
    std::span<const SegmentKind> kinds, size_t base_prefix,
    const Instance& view, const SupportLookup& stored_support,
    const RunOptions& opts, EvalStats* stats) const {
  auto start = std::chrono::steady_clock::now();
  if (stats) {
    *stats = EvalStats{};
    stats->compile_seconds = compile_seconds_;
    stats->plan_decisions = plan_decisions_;
  }
  internal::Executor exec(*universe_, *this, opts, stats);
  Result<DeltaRun> out =
      exec.RunDelta(segments, kinds, base_prefix, view, stored_support);
  if (stats && opts.collect_derived_stats && out.ok()) {
    stats->derived_stats = ComputeInstanceStats(*universe_, out->idb);
  }
  if (stats) stats->run_seconds = SecondsSince(start);
  return out;
}

Result<Instance> PreparedProgram::RunOnBase(const BaseStore& base,
                                            const RunOptions& opts,
                                            EvalStats* stats) const {
  const BaseStore* segment = &base;
  return RunOnSegments({&segment, 1}, opts, stats);
}

Result<Instance> PreparedProgram::Run(const Instance& input,
                                      const RunOptions& opts,
                                      EvalStats* stats) const {
  // Legacy semantics (input plus derived facts) over the layered engine:
  // wrap the input in a throwaway base, run, and union the derived overlay
  // back into the input copy the base holds.
  BaseStore base(*universe_, input);
  SEQDL_ASSIGN_OR_RETURN(Instance derived, RunOnBase(base, opts, stats));
  Instance out = base.TakeInstance();
  out.UnionWith(std::move(derived));
  return out;
}

Result<Instance> PreparedProgram::RunQuery(const Instance& input,
                                           RelId output,
                                           const RunOptions& opts,
                                           EvalStats* stats) const {
  SEQDL_ASSIGN_OR_RETURN(Instance full, Run(input, opts, stats));
  return full.Project({output});
}

}  // namespace seqdl
