#include "src/engine/index.h"

#include <cassert>
#include <span>

namespace seqdl {

namespace {

const std::vector<const Tuple*>& EmptyBucket() {
  static const std::vector<const Tuple*> kEmpty;
  return kEmpty;
}

}  // namespace

bool IndexedInstance::Add(RelId rel, Tuple t) {
  auto [stored, is_new] = base_.Insert(rel, std::move(t));
  if (!is_new) return false;
  // Update every built index of this relation.
  for (auto it = indexes_.lower_bound({rel, 0});
       it != indexes_.end() && it->first.first == rel; ++it) {
    uint32_t col = it->first.second;
    if (col < stored->size()) {
      it->second.buckets[(*stored)[col]].push_back(stored);
    }
  }
  for (auto it = first_indexes_.lower_bound({rel, 0});
       it != first_indexes_.end() && it->first.first == rel; ++it) {
    uint32_t col = it->first.second;
    if (col < stored->size()) {
      std::span<const Value> path = universe_->GetPath((*stored)[col]);
      if (!path.empty()) {
        it->second.buckets[path.front()].push_back(stored);
      }
    }
  }
  return true;
}

const std::vector<const Tuple*>& IndexedInstance::Probe(RelId rel,
                                                        uint32_t col,
                                                        PathId key) {
  auto [it, built_now] = indexes_.try_emplace({rel, col});
  if (built_now) {
    for (const Tuple& t : base_.Tuples(rel)) {
      if (col < t.size()) it->second.buckets[t[col]].push_back(&t);
    }
  }
  auto bucket = it->second.buckets.find(key);
  if (bucket == it->second.buckets.end()) return EmptyBucket();
  return bucket->second;
}

const std::vector<const Tuple*>& IndexedInstance::ProbeFirst(RelId rel,
                                                             uint32_t col,
                                                             Value first) {
  assert(universe_ != nullptr);
  auto [it, built_now] = first_indexes_.try_emplace({rel, col});
  if (built_now) {
    for (const Tuple& t : base_.Tuples(rel)) {
      if (col >= t.size()) continue;
      std::span<const Value> path = universe_->GetPath(t[col]);
      if (!path.empty()) it->second.buckets[path.front()].push_back(&t);
    }
  }
  auto bucket = it->second.buckets.find(first);
  if (bucket == it->second.buckets.end()) return EmptyBucket();
  return bucket->second;
}

}  // namespace seqdl
