#include "src/engine/index.h"

#include <cassert>
#include <span>

namespace seqdl {

const std::vector<const Tuple*>& EmptyBucket() {
  static const std::vector<const Tuple*> kEmpty;
  return kEmpty;
}

namespace {

template <typename Key>
const std::vector<const Tuple*>& FindBucket(
    const std::unordered_map<Key, std::vector<const Tuple*>>& buckets,
    Key key) {
  auto it = buckets.find(key);
  if (it == buckets.end()) return EmptyBucket();
  return it->second;
}

// Files one tuple's `col`-th component into all three index families at
// once — the population step of BaseStore::Build, which builds all
// families together in one amortized pass over the EDB. Empty paths have
// no first/last value and land in the whole-value buckets only (they can
// never match a non-empty prefix/suffix anyway).
void IndexTupleColumn(
    const Universe& u, const Tuple& t, uint32_t col,
    std::unordered_map<PathId, std::vector<const Tuple*>>* whole,
    std::unordered_map<Value, std::vector<const Tuple*>>* first,
    std::unordered_map<Value, std::vector<const Tuple*>>* last) {
  if (col >= t.size()) return;
  (*whole)[t[col]].push_back(&t);
  std::span<const Value> path = u.GetPath(t[col]);
  if (!path.empty()) {
    (*first)[path.front()].push_back(&t);
    (*last)[path.back()].push_back(&t);
  }
}

}  // namespace

// --- IndexedInstance ---------------------------------------------------------

bool IndexedInstance::Add(RelId rel, Tuple t) {
  auto [stored, is_new] = base_.Insert(rel, std::move(t));
  if (!is_new) return false;
  // Update every built index of this relation.
  for (auto it = indexes_.lower_bound({rel, 0});
       it != indexes_.end() && it->first.first == rel; ++it) {
    uint32_t col = it->first.second;
    if (col < stored->size()) {
      it->second.buckets[(*stored)[col]].push_back(stored);
    }
  }
  for (auto it = first_indexes_.lower_bound({rel, 0});
       it != first_indexes_.end() && it->first.first == rel; ++it) {
    uint32_t col = it->first.second;
    if (col < stored->size()) {
      std::span<const Value> path = universe_->GetPath((*stored)[col]);
      if (!path.empty()) {
        it->second.buckets[path.front()].push_back(stored);
      }
    }
  }
  for (auto it = last_indexes_.lower_bound({rel, 0});
       it != last_indexes_.end() && it->first.first == rel; ++it) {
    uint32_t col = it->first.second;
    if (col < stored->size()) {
      std::span<const Value> path = universe_->GetPath((*stored)[col]);
      if (!path.empty()) {
        it->second.buckets[path.back()].push_back(stored);
      }
    }
  }
  return true;
}

size_t IndexedInstance::BulkAdd(RelId rel, const TupleSet& tuples) {
  auto has_index = [&](const auto& m) {
    auto it = m.lower_bound({rel, 0});
    return it != m.end() && it->first.first == rel;
  };
  if (has_index(indexes_) || has_index(first_indexes_) ||
      has_index(last_indexes_)) {
    size_t added = 0;
    for (const Tuple& t : tuples) {
      if (Add(rel, t)) ++added;
    }
    return added;
  }
  return base_.AddAll(rel, tuples);
}

bool IndexedInstance::Remove(RelId rel, const Tuple& t) {
  const TupleSet& tuples = base_.Tuples(rel);
  auto stored_it = tuples.find(t);
  if (stored_it == tuples.end()) return false;
  // Bucket entries are pointers to the stored tuple; resolve the address
  // before the instance erases it.
  const Tuple* stored = &*stored_it;
  auto erase_from = [](std::vector<const Tuple*>& bucket, const Tuple* p) {
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i] == p) {
        bucket[i] = bucket.back();
        bucket.pop_back();
        return;
      }
    }
  };
  for (auto it = indexes_.lower_bound({rel, 0});
       it != indexes_.end() && it->first.first == rel; ++it) {
    uint32_t col = it->first.second;
    if (col >= stored->size()) continue;
    auto b = it->second.buckets.find((*stored)[col]);
    if (b != it->second.buckets.end()) erase_from(b->second, stored);
  }
  for (auto it = first_indexes_.lower_bound({rel, 0});
       it != first_indexes_.end() && it->first.first == rel; ++it) {
    uint32_t col = it->first.second;
    if (col >= stored->size()) continue;
    std::span<const Value> path = universe_->GetPath((*stored)[col]);
    if (path.empty()) continue;
    auto b = it->second.buckets.find(path.front());
    if (b != it->second.buckets.end()) erase_from(b->second, stored);
  }
  for (auto it = last_indexes_.lower_bound({rel, 0});
       it != last_indexes_.end() && it->first.first == rel; ++it) {
    uint32_t col = it->first.second;
    if (col >= stored->size()) continue;
    std::span<const Value> path = universe_->GetPath((*stored)[col]);
    if (path.empty()) continue;
    auto b = it->second.buckets.find(path.back());
    if (b != it->second.buckets.end()) erase_from(b->second, stored);
  }
  return base_.Remove(rel, t);
}

const std::vector<const Tuple*>& IndexedInstance::Probe(RelId rel,
                                                        uint32_t col,
                                                        PathId key) {
  auto [it, built_now] = indexes_.try_emplace({rel, col});
  if (built_now) {
    for (const Tuple& t : base_.Tuples(rel)) {
      if (col < t.size()) it->second.buckets[t[col]].push_back(&t);
    }
  }
  return FindBucket(it->second.buckets, key);
}

const std::vector<const Tuple*>& IndexedInstance::ProbeFirst(RelId rel,
                                                             uint32_t col,
                                                             Value first) {
  assert(universe_ != nullptr);
  auto [it, built_now] = first_indexes_.try_emplace({rel, col});
  if (built_now) {
    for (const Tuple& t : base_.Tuples(rel)) {
      if (col >= t.size()) continue;
      std::span<const Value> path = universe_->GetPath(t[col]);
      if (!path.empty()) it->second.buckets[path.front()].push_back(&t);
    }
  }
  return FindBucket(it->second.buckets, first);
}

const std::vector<const Tuple*>& IndexedInstance::ProbeLast(RelId rel,
                                                            uint32_t col,
                                                            Value last) {
  assert(universe_ != nullptr);
  auto [it, built_now] = last_indexes_.try_emplace({rel, col});
  if (built_now) {
    for (const Tuple& t : base_.Tuples(rel)) {
      if (col >= t.size()) continue;
      std::span<const Value> path = universe_->GetPath(t[col]);
      if (!path.empty()) it->second.buckets[path.back()].push_back(&t);
    }
  }
  return FindBucket(it->second.buckets, last);
}

// --- BaseStore ---------------------------------------------------------------

BaseStore::BaseStore(const Universe& u, Instance edb)
    : universe_(&u), edb_(std::move(edb)) {
  // Fix the slot table now: one slot per (relation, column) of the EDB.
  // ColSlot is immovable (once_flag), so each vector is sized once here
  // and never resized.
  for (RelId rel : edb_.Relations()) {
    slots_.emplace(std::piecewise_construct, std::forward_as_tuple(rel),
                   std::forward_as_tuple(u.RelArity(rel)));
  }
}

const BaseStore::ColSlot* BaseStore::Slot(RelId rel, uint32_t col) const {
  auto it = slots_.find(rel);
  if (it == slots_.end() || col >= it->second.size()) return nullptr;
  return &it->second[col];
}

void BaseStore::Build(RelId rel, const ColSlot& slot, uint32_t col) const {
  std::call_once(slot.once, [&] {
    // The slot table is logically mutable index state over the immutable
    // EDB; call_once makes the build exclusive and publishes the maps to
    // every later prober.
    ColSlot& s = const_cast<ColSlot&>(slot);
    for (const Tuple& t : edb_.Tuples(rel)) {
      IndexTupleColumn(*universe_, t, col, &s.whole, &s.first, &s.last);
    }
    s.built.store(true, std::memory_order_relaxed);
  });
}

const std::vector<const Tuple*>& BaseStore::Probe(RelId rel, uint32_t col,
                                                  PathId key) const {
  const ColSlot* slot = Slot(rel, col);
  if (slot == nullptr) return EmptyBucket();
  Build(rel, *slot, col);
  return FindBucket(slot->whole, key);
}

const std::vector<const Tuple*>& BaseStore::ProbeFirst(RelId rel,
                                                       uint32_t col,
                                                       Value first) const {
  const ColSlot* slot = Slot(rel, col);
  if (slot == nullptr) return EmptyBucket();
  Build(rel, *slot, col);
  return FindBucket(slot->first, first);
}

const std::vector<const Tuple*>& BaseStore::ProbeLast(RelId rel, uint32_t col,
                                                      Value last) const {
  const ColSlot* slot = Slot(rel, col);
  if (slot == nullptr) return EmptyBucket();
  Build(rel, *slot, col);
  return FindBucket(slot->last, last);
}

void BaseStore::BuildAllIndexes() const {
  for (const auto& [rel, cols] : slots_) {
    for (uint32_t col = 0; col < cols.size(); ++col) {
      Build(rel, cols[col], col);
    }
  }
}

const StoreStats& BaseStore::Stats() const {
  std::call_once(stats_once_, [&] {
    stats_ = ComputeInstanceStats(*universe_, edb_);
  });
  return stats_;
}

size_t BaseStore::NumIndexedColumns() const {
  size_t n = 0;
  for (const auto& [rel, cols] : slots_) {
    for (const ColSlot& slot : cols) {
      if (slot.built.load(std::memory_order_relaxed)) ++n;
    }
  }
  return n;
}

// --- LayeredStore ------------------------------------------------------------

LayeredStore::LayeredStore(const Universe& u,
                           std::span<const BaseStore* const> segments,
                           std::span<const SegmentKind> kinds)
    : segments_(segments.begin(), segments.end()),
      kinds_(kinds.begin(), kinds.end()),
      overlay_(u, Instance{}) {
  assert(kinds_.empty() || kinds_.size() == segments_.size());
  if (kinds_.empty()) kinds_.assign(segments_.size(), SegmentKind::kFacts);
  size_t num_tombs = 0;
  for (SegmentKind k : kinds_) {
    if (k == SegmentKind::kTombstones) ++num_tombs;
  }
  tombs_.reserve(num_tombs);
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (kinds_[i] == SegmentKind::kTombstones) tombs_.push_back(segments_[i]);
  }
  // A fact layer's shadows are the tombstone segments *after* it in stack
  // order: the suffix of tombs_ past the tombstones already seen. tombs_
  // is fully built above, so these spans never dangle.
  layers_.reserve(segments_.size() - num_tombs);
  size_t tombs_seen = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (kinds_[i] == SegmentKind::kTombstones) {
      ++tombs_seen;
      continue;
    }
    layers_.push_back(SegmentLayer{
        segments_[i],
        std::span<const BaseStore* const>(tombs_.data() + tombs_seen,
                                          tombs_.size() - tombs_seen)});
  }
}

size_t LayeredStore::Adopt(RelId rel, const TupleSet& tuples,
                           std::span<const BaseStore* const> check,
                           std::span<const SegmentKind> check_kinds) {
  assert(check_kinds.empty() || check_kinds.size() == check.size());
  bool may_overlap = false;
  for (const BaseStore* seg : check) {
    if (!seg->Tuples(rel).empty()) {
      may_overlap = true;
      break;
    }
  }
  if (!may_overlap) return overlay_.BulkAdd(rel, tuples);
  // Visible membership restricted to the check span: the newest check
  // segment holding the fact decides, exactly like ContainsBase.
  auto visible_in_check = [&](const Tuple& t) {
    for (size_t i = check.size(); i-- > 0;) {
      if (check[i]->Contains(rel, t)) {
        return check_kinds.empty() || check_kinds[i] == SegmentKind::kFacts;
      }
    }
    return false;
  };
  size_t added = 0;
  for (const Tuple& t : tuples) {
    if (!visible_in_check(t) && overlay_.Add(rel, t)) ++added;
  }
  return added;
}

// --- DeltaIndexer ------------------------------------------------------------

DeltaIndexer::ColIndexes* DeltaIndexer::Slot(RelId rel, uint32_t col,
                                             const TupleSet** tuples) {
  auto delta_it = delta_->find(rel);
  if (delta_it == delta_->end() || delta_it->second.size() < threshold_) {
    return nullptr;
  }
  *tuples = &delta_it->second;
  return &built_[{rel, col}];
}

const std::vector<const Tuple*>* DeltaIndexer::Probe(RelId rel, uint32_t col,
                                                     PathId key) {
  const TupleSet* tuples = nullptr;
  ColIndexes* idx = Slot(rel, col, &tuples);
  if (idx == nullptr) return nullptr;
  if (!idx->whole_built) {
    idx->whole_built = true;
    for (const Tuple& t : *tuples) {
      if (col < t.size()) idx->whole[t[col]].push_back(&t);
    }
  }
  return &FindBucket(idx->whole, key);
}

const std::vector<const Tuple*>* DeltaIndexer::ProbeFirst(RelId rel,
                                                          uint32_t col,
                                                          Value first) {
  const TupleSet* tuples = nullptr;
  ColIndexes* idx = Slot(rel, col, &tuples);
  if (idx == nullptr) return nullptr;
  if (!idx->first_built) {
    idx->first_built = true;
    for (const Tuple& t : *tuples) {
      if (col >= t.size()) continue;
      std::span<const Value> path = universe_->GetPath(t[col]);
      if (!path.empty()) idx->first[path.front()].push_back(&t);
    }
  }
  return &FindBucket(idx->first, first);
}

const std::vector<const Tuple*>* DeltaIndexer::ProbeLast(RelId rel,
                                                         uint32_t col,
                                                         Value last) {
  const TupleSet* tuples = nullptr;
  ColIndexes* idx = Slot(rel, col, &tuples);
  if (idx == nullptr) return nullptr;
  if (!idx->last_built) {
    idx->last_built = true;
    for (const Tuple& t : *tuples) {
      if (col >= t.size()) continue;
      std::span<const Value> path = universe_->GetPath(t[col]);
      if (!path.empty()) idx->last[path.back()].push_back(&t);
    }
  }
  return &FindBucket(idx->last, last);
}

}  // namespace seqdl
