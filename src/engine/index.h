// Indexed relation storage for the evaluator.
//
// IndexedInstance wraps an Instance with two families of per-(relation,
// column) hash indexes:
//
//   * whole-value indexes keyed on the column's PathId, probed when the
//     planner proved an argument position fully ground under the current
//     valuation (PlanStep::index_arg);
//   * first-value indexes keyed on the first Value of the column's path,
//     probed when only a leading prefix of the argument is ground
//     (PlanStep::prefix_arg) — a matching tuple must start with the
//     prefix's first value, so the bucket is a sound overapproximation
//     that the usual MatchArgs pass then filters exactly.
//
// Either way a full relation scan becomes a bucket probe. Indexes are
// built lazily on first probe of a (relation, column) pair and maintained
// incrementally as facts are derived.
//
// Bucket entries are pointers into the underlying TupleSet; unordered_set
// guarantees reference stability under insertion, so derivation never
// invalidates them.
#ifndef SEQDL_ENGINE_INDEX_H_
#define SEQDL_ENGINE_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/engine/instance.h"
#include "src/term/universe.h"

namespace seqdl {

class IndexedInstance {
 public:
  /// An empty store; usable only after move-assignment from a real one.
  IndexedInstance() = default;
  /// Wraps `base`. `u` resolves paths to their first value for the
  /// first-value indexes and must outlive the store.
  IndexedInstance(const Universe& u, Instance base)
      : universe_(&u), base_(std::move(base)) {}

  const Instance& instance() const { return base_; }
  /// Releases the underlying instance (indexes become meaningless).
  Instance&& TakeInstance() { return std::move(base_); }

  /// Adds a fact, updating any built indexes of its relation. Returns true
  /// if the fact was new.
  bool Add(RelId rel, Tuple t);

  bool Contains(RelId rel, const Tuple& t) const {
    return base_.Contains(rel, t);
  }
  const TupleSet& Tuples(RelId rel) const { return base_.Tuples(rel); }

  /// The tuples of `rel` whose `col`-th component is `key`. Builds the
  /// (rel, col) whole-value index on first use.
  const std::vector<const Tuple*>& Probe(RelId rel, uint32_t col, PathId key);

  /// The tuples of `rel` whose `col`-th component is a non-empty path
  /// starting with `first`. Builds the (rel, col) first-value index on
  /// first use.
  const std::vector<const Tuple*>& ProbeFirst(RelId rel, uint32_t col,
                                              Value first);

  /// Number of distinct (relation, column) indexes built so far.
  size_t NumIndexes() const {
    return indexes_.size() + first_indexes_.size();
  }

 private:
  struct ColumnIndex {
    std::unordered_map<PathId, std::vector<const Tuple*>> buckets;
  };
  struct FirstValueIndex {
    std::unordered_map<Value, std::vector<const Tuple*>> buckets;
  };

  const Universe* universe_ = nullptr;
  Instance base_;
  std::map<std::pair<RelId, uint32_t>, ColumnIndex> indexes_;
  std::map<std::pair<RelId, uint32_t>, FirstValueIndex> first_indexes_;
};

}  // namespace seqdl

#endif  // SEQDL_ENGINE_INDEX_H_
