// Indexed relation storage for the evaluator.
//
// Three families of per-(relation, column) hash indexes appear throughout:
//
//   * whole-value indexes keyed on the column's PathId, probed when the
//     planner proved an argument position fully ground under the current
//     valuation (PlanStep::index_arg);
//   * first-value indexes keyed on the first Value of the column's path,
//     probed when only a leading prefix of the argument is ground
//     (PlanStep::prefix_arg) — a matching tuple must start with the
//     prefix's first value, so the bucket is a sound overapproximation
//     that the usual MatchArgs pass then filters exactly;
//   * last-value indexes keyed on the last Value of the column's path,
//     probed when only a trailing suffix of the argument is ground
//     (PlanStep::suffix_arg, e.g. `$x ++ a`) — symmetric to first-value.
//
// Either way a full relation scan becomes a bucket probe.
//
// Storage classes:
//
//   * IndexedInstance — a private, mutable store. Indexes build lazily on
//     first probe and are maintained incrementally as facts are derived.
//     Not thread-safe; each run owns its own.
//   * BaseStore — an immutable, shared store over a fixed EDB. Indexes
//     build at most once per (relation, column) under std::call_once and
//     are read-only afterwards, so any number of threads can probe
//     concurrently. Database (database.h) wraps one; the legacy one-shot
//     entry points build a throwaway one per call.
//   * LayeredStore — the copy-on-read view the executor runs on: a stack
//     of shared BaseStore segments underneath (one per committed epoch —
//     see database.h), a private IndexedInstance overlay on top.
//     Derivation only ever mutates the overlay; the base segments are
//     never touched.
//   * DeltaIndexer — per-round view over semi-naive delta sets, indexing a
//     delta set on first probe once it exceeds a size threshold (small
//     deltas stay linear scans).
//
// Bucket entries are pointers into the underlying TupleSet; unordered_set
// guarantees reference stability under insertion, so derivation never
// invalidates them.
#ifndef SEQDL_ENGINE_INDEX_H_
#define SEQDL_ENGINE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/engine/instance.h"
#include "src/engine/stats.h"
#include "src/term/universe.h"

namespace seqdl {

/// The shared empty bucket returned for missing keys.
const std::vector<const Tuple*>& EmptyBucket();

class IndexedInstance {
 public:
  /// An empty store; usable only after move-assignment from a real one.
  IndexedInstance() = default;
  /// Wraps `base`. `u` resolves paths to their first/last value for the
  /// first/last-value indexes and must outlive the store.
  IndexedInstance(const Universe& u, Instance base)
      : universe_(&u), base_(std::move(base)) {}

  const Instance& instance() const { return base_; }
  /// Releases the underlying instance (indexes become meaningless).
  Instance&& TakeInstance() { return std::move(base_); }

  /// Adds a fact, updating any built indexes of its relation. Returns true
  /// if the fact was new.
  bool Add(RelId rel, Tuple t);

  /// Bulk counterpart of Add: inserts all of `tuples` with capacity
  /// reserved up front. While no index of `rel` has been built yet this
  /// skips the per-fact index-maintenance searches entirely (indexes
  /// built later see the facts anyway — they build from the instance);
  /// once any exists it degrades to per-fact Add. Returns the number of
  /// new facts.
  size_t BulkAdd(RelId rel, const TupleSet& tuples);

  bool Contains(RelId rel, const Tuple& t) const {
    return base_.Contains(rel, t);
  }
  const TupleSet& Tuples(RelId rel) const { return base_.Tuples(rel); }

  /// The tuples of `rel` whose `col`-th component is `key`. Builds the
  /// (rel, col) whole-value index on first use.
  const std::vector<const Tuple*>& Probe(RelId rel, uint32_t col, PathId key);

  /// The tuples of `rel` whose `col`-th component is a non-empty path
  /// starting with `first`. Builds the (rel, col) first-value index on
  /// first use.
  const std::vector<const Tuple*>& ProbeFirst(RelId rel, uint32_t col,
                                              Value first);

  /// The tuples of `rel` whose `col`-th component is a non-empty path
  /// ending with `last`. Builds the (rel, col) last-value index on first
  /// use.
  const std::vector<const Tuple*>& ProbeLast(RelId rel, uint32_t col,
                                             Value last);

  /// Removes a fact, dropping it from every built index of its relation.
  /// Returns true if it was present. The DRed deletion path's overlay
  /// surgery; O(bucket) per built index family.
  bool Remove(RelId rel, const Tuple& t);

  /// Number of distinct (relation, column) indexes built so far.
  size_t NumIndexes() const {
    return indexes_.size() + first_indexes_.size() + last_indexes_.size();
  }

 private:
  struct ColumnIndex {
    std::unordered_map<PathId, std::vector<const Tuple*>> buckets;
  };
  struct ValueIndex {
    std::unordered_map<Value, std::vector<const Tuple*>> buckets;
  };

  const Universe* universe_ = nullptr;
  Instance base_;
  std::map<std::pair<RelId, uint32_t>, ColumnIndex> indexes_;
  std::map<std::pair<RelId, uint32_t>, ValueIndex> first_indexes_;
  std::map<std::pair<RelId, uint32_t>, ValueIndex> last_indexes_;
};

/// An immutable, shareable indexed store over a fixed EDB instance.
///
/// Construction records the relations present (the slot table is fixed
/// from then on); the per-(relation, column) whole/first/last-value
/// indexes build together on the first probe of that column, exactly once
/// across all threads (std::call_once), and are pure reads afterwards.
/// All probe/lookup methods are const and safe to call concurrently.
class BaseStore {
 public:
  BaseStore(const Universe& u, Instance edb);

  const Instance& instance() const { return edb_; }
  /// Releases the underlying instance (the store becomes unusable). Only
  /// for throwaway stores on the legacy one-shot path, after evaluation.
  Instance&& TakeInstance() { return std::move(edb_); }

  bool Contains(RelId rel, const Tuple& t) const {
    return edb_.Contains(rel, t);
  }
  const TupleSet& Tuples(RelId rel) const { return edb_.Tuples(rel); }

  const std::vector<const Tuple*>& Probe(RelId rel, uint32_t col,
                                         PathId key) const;
  const std::vector<const Tuple*>& ProbeFirst(RelId rel, uint32_t col,
                                              Value first) const;
  const std::vector<const Tuple*>& ProbeLast(RelId rel, uint32_t col,
                                             Value last) const;

  /// Builds every (relation, column) index now instead of on first probe
  /// (Database::OpenOptions::eager_indexes).
  void BuildAllIndexes() const;

  /// Number of (relation, column) columns whose indexes have been built.
  size_t NumIndexedColumns() const;

  /// Measured per-(relation, column, family) bucket statistics of the
  /// store's EDB — the planner's selectivity input (see stats.h). The EDB
  /// is immutable, so the measurement runs once (std::call_once, like the
  /// index builds) and the cached reference is safe to read from any
  /// thread afterwards.
  const StoreStats& Stats() const;

 private:
  /// All three indexes of one (relation, column) pair, built together in
  /// one pass over the relation on first probe.
  struct ColSlot {
    mutable std::once_flag once;
    std::unordered_map<PathId, std::vector<const Tuple*>> whole;
    std::unordered_map<Value, std::vector<const Tuple*>> first;
    std::unordered_map<Value, std::vector<const Tuple*>> last;
    std::atomic<bool> built{false};
  };

  const ColSlot* Slot(RelId rel, uint32_t col) const;
  void Build(RelId rel, const ColSlot& slot, uint32_t col) const;

  const Universe* universe_;
  Instance edb_;
  /// Fixed after construction; per-relation slot vectors are sized to the
  /// relation's widest tuple and never resized (ColSlot is immovable).
  std::unordered_map<RelId, std::vector<ColSlot>> slots_;
  /// Lazily measured EDB statistics (Stats()).
  mutable std::once_flag stats_once_;
  mutable StoreStats stats_;
};

/// What a published segment's contents mean: facts add to the EDB;
/// tombstones *retract* — a tombstone segment's tuples shadow matching
/// facts in every older segment (see database.h's append-log).
enum class SegmentKind : uint8_t { kFacts, kTombstones };

/// One enumerable layer of a LayeredStore: a fact segment plus its
/// *shadows* — the tombstone segments published after it, whose contents
/// retract matching facts of this segment. A tuple enumerated from the
/// layer is visible iff no shadow holds it. Append-only stacks have no
/// shadows, so the visibility filter is a no-op there.
struct SegmentLayer {
  const BaseStore* store = nullptr;
  std::span<const BaseStore* const> shadows;

  bool Shadowed(RelId rel, const Tuple& t) const {
    for (const BaseStore* s : shadows) {
      if (s->Contains(rel, t)) return true;
    }
    return false;
  }
};

/// The executor's copy-on-read view: a stack of shared immutable BaseStore
/// *segments* (the epoch-pinned EDB — one segment per committed Append or
/// Retract, see database.h) layered under a private mutable IDB overlay.
/// Lookups consult every layer; derivation writes only the overlay, so any
/// number of LayeredStores can share the same segments concurrently.
/// Append/Retract dedupe on commit, so in stack order each fact's
/// occurrences alternate fact/tombstone/fact/... — enumerating the fact
/// layers and skipping shadowed tuples yields each *visible* fact exactly
/// once, and visibility of a single fact is decided by the newest segment
/// holding it (ContainsBase's reverse walk).
class LayeredStore {
 public:
  /// Usable only after move-assignment from a real one.
  LayeredStore() = default;
  LayeredStore(LayeredStore&&) = default;
  LayeredStore& operator=(LayeredStore&&) = default;
  // Non-copyable: overlay index buckets point into the overlay instance.
  LayeredStore(const LayeredStore&) = delete;
  LayeredStore& operator=(const LayeredStore&) = delete;

  /// `kinds` marks each segment (parallel to `segments`); empty = all
  /// fact segments (the append-only callers).
  LayeredStore(const Universe& u, std::span<const BaseStore* const> segments,
               std::span<const SegmentKind> kinds);
  LayeredStore(const Universe& u, std::span<const BaseStore* const> segments)
      : LayeredStore(u, segments, {}) {}
  /// Single-segment convenience (the one-shot Run path).
  LayeredStore(const Universe& u, const BaseStore& base)
      : segments_(1, &base),
        kinds_(1, SegmentKind::kFacts),
        layers_(1, SegmentLayer{&base, {}}),
        overlay_(u, Instance{}) {}

  /// The enumerable fact layers in stack order, each with its shadows.
  /// Tombstone segments never appear here — their contents are not facts.
  std::span<const SegmentLayer> layers() const { return layers_; }
  IndexedInstance& overlay() { return overlay_; }

  /// Visible membership in the base segments only (not the overlay): the
  /// newest segment holding the fact decides — a fact segment means
  /// present, a tombstone means retracted.
  bool ContainsBase(RelId rel, const Tuple& t) const {
    for (size_t i = segments_.size(); i-- > 0;) {
      if (segments_[i]->Contains(rel, t)) {
        return kinds_[i] == SegmentKind::kFacts;
      }
    }
    return false;
  }

  /// Adds a fact to the overlay unless some layer visibly holds it.
  bool Add(RelId rel, Tuple t) {
    if (ContainsBase(rel, t)) return false;
    return overlay_.Add(rel, std::move(t));
  }

  /// Bulk-adopts `tuples` into the overlay for a relation known disjoint
  /// from every segment except possibly those in `check` — the delta
  /// path's shape: a stored view's derived facts never overlap the
  /// segments the view was computed over, only segments appended since
  /// can have promoted some of them to EDB. A fact counts as held only
  /// when *visible* there (`check_kinds` parallel to `check`, empty = all
  /// facts): a promoted-then-retracted view fact stays view state, exactly
  /// as a cold run would derive it. When no `check` segment mentions the
  /// relation at all, the whole set installs in one reserved pass.
  /// Returns the number of facts adopted.
  size_t Adopt(RelId rel, const TupleSet& tuples,
               std::span<const BaseStore* const> check,
               std::span<const SegmentKind> check_kinds = {});

  bool Contains(RelId rel, const Tuple& t) const {
    if (ContainsBase(rel, t)) return true;
    return overlay_.Contains(rel, t);
  }

  /// Removes a fact from the overlay (DRed over-deletion). Base segments
  /// are immutable — only overlay facts can be removed.
  bool RemoveOverlay(RelId rel, const Tuple& t) {
    return overlay_.Remove(rel, t);
  }

  /// Releases the overlay (the derived facts only).
  Instance&& TakeOverlay() { return overlay_.TakeInstance(); }

 private:
  std::vector<const BaseStore*> segments_;
  std::vector<SegmentKind> kinds_;
  /// Tombstone segments in stack order; layers_ shadows are suffixes of
  /// this vector (sized once in the constructor, never reallocated).
  std::vector<const BaseStore*> tombs_;
  std::vector<SegmentLayer> layers_;
  IndexedInstance overlay_;
};

/// Per-round index over semi-naive delta sets. Wraps one round's deltas
/// (which are immutable for the duration of the round) and builds a
/// per-(relation, column) index on first probe — but only when the delta
/// set holds at least `threshold` tuples; below that, Probe* returns
/// nullptr and the caller scans the delta linearly. Single-threaded, like
/// the run that owns it.
class DeltaIndexer {
 public:
  DeltaIndexer(const Universe& u, const std::map<RelId, TupleSet>& delta,
               size_t threshold)
      : universe_(&u), delta_(&delta), threshold_(threshold) {}

  /// nullptr = delta below threshold; scan linearly.
  const std::vector<const Tuple*>* Probe(RelId rel, uint32_t col, PathId key);
  const std::vector<const Tuple*>* ProbeFirst(RelId rel, uint32_t col,
                                              Value first);
  const std::vector<const Tuple*>* ProbeLast(RelId rel, uint32_t col,
                                             Value last);

 private:
  /// Families build independently (per-family flags): a plan step probes
  /// exactly one family, and this cost recurs every round — unlike
  /// BaseStore, which builds all three in one amortized pass.
  struct ColIndexes {
    std::unordered_map<PathId, std::vector<const Tuple*>> whole;
    std::unordered_map<Value, std::vector<const Tuple*>> first;
    std::unordered_map<Value, std::vector<const Tuple*>> last;
    bool whole_built = false;
    bool first_built = false;
    bool last_built = false;
  };

  /// The (rel, col) slot, or nullptr when the delta is below threshold or
  /// absent. On success `*tuples` is the delta set to build from.
  ColIndexes* Slot(RelId rel, uint32_t col, const TupleSet** tuples);

  const Universe* universe_;
  const std::map<RelId, TupleSet>* delta_;
  size_t threshold_;
  std::map<std::pair<RelId, uint32_t>, ColIndexes> built_;
};

}  // namespace seqdl

#endif  // SEQDL_ENGINE_INDEX_H_
