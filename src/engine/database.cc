#include "src/engine/database.h"

#include <algorithm>
#include <utility>

#include "src/storage/format.h"
#include "src/view/view.h"

namespace seqdl {

Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;
Database::~Database() = default;
Database::DbState::DbState() = default;
Database::DbState::~DbState() = default;

namespace {

/// True iff (rel, t) is *visible* in the stack: the newest segment
/// holding it decides — a fact segment means present, a tombstone means
/// retracted (the per-fact flip invariant, see the header comment).
bool StackVisible(const std::vector<std::shared_ptr<const BaseStore>>& segs,
                  const std::vector<SegmentKind>& kinds, RelId rel,
                  const Tuple& t) {
  for (size_t i = segs.size(); i-- > 0;) {
    if (segs[i]->Contains(rel, t)) {
      return kinds[i] == SegmentKind::kFacts;
    }
  }
  return false;
}

/// Materializes the visible facts of a stack: fact segments union in,
/// tombstone segments remove (forward walk — a later fact re-appends).
Instance MaterializeVisible(
    const std::vector<std::shared_ptr<const BaseStore>>& segs,
    const std::vector<SegmentKind>& kinds) {
  Instance out;
  for (size_t i = 0; i < segs.size(); ++i) {
    const Instance& inst = segs[i]->instance();
    if (kinds[i] == SegmentKind::kFacts) {
      out.UnionWith(inst);
      continue;
    }
    for (RelId rel : inst.Relations()) {
      for (const Tuple& t : inst.Tuples(rel)) {
        out.Remove(rel, t);
      }
    }
  }
  return out;
}

}  // namespace

Result<Database> Database::Open(Universe& u, Instance edb,
                                const OpenOptions& opts) {
  std::unique_ptr<storage::StorageEngine> engine;
  if (!opts.data_dir.empty()) {
    storage::StorageOptions sopts;
    sopts.dir = opts.data_dir;
    sopts.sync_mode = opts.sync_mode;
    sopts.sync_interval_ms = opts.sync_interval_ms;
    sopts.checkpoint_wal_bytes = opts.checkpoint_wal_bytes;
    SEQDL_ASSIGN_OR_RETURN(engine, storage::StorageEngine::Open(u, sopts));
    if (engine->recovered() && !edb.Empty()) {
      return storage::StorageError(
          storage::kSdDataDirConflict,
          opts.data_dir +
              " is already initialized; open it without a seed instance "
              "(the recovered EDB is authoritative) or point at a fresh "
              "directory");
    }
  }

  auto state = std::make_unique<DbState>();
  state->universe = &u;
  state->opts = opts;

  if (engine != nullptr && engine->recovered()) {
    // Rebuild the published stack exactly as the manifest describes it,
    // bottom-of-stack first, then replay the WAL tail through the
    // normal commit path (re-deduping is deterministic on the effective
    // batches the log holds, so the stack converges to the crash-time
    // structure).
    auto set = std::make_shared<SegmentSet>();
    set->epoch = engine->recovered_epoch();
    set->shrink_floor = engine->recovered_shrink_floor();
    for (storage::SealedSegment& sealed : engine->sealed()) {
      size_t facts = sealed.facts.NumFacts();
      auto segment =
          std::make_shared<BaseStore>(u, std::move(sealed.facts));
      if (opts.eager_indexes) segment->BuildAllIndexes();
      set->segments.push_back(std::move(segment));
      set->segment_epochs.push_back(sealed.stamp);
      set->segment_kinds.push_back(sealed.kind);
      if (sealed.kind == SegmentKind::kFacts) {
        set->total_facts += facts;
      } else {
        set->total_facts -= facts;
      }
    }
    engine->sealed().clear();
    state->current = std::move(set);
    state->views.reset(new ViewManager(*state));
    state->storage = std::move(engine);

    state->replaying = true;
    DbState* raw = state.get();
    Result<storage::WalReplay> replay = state->storage->ReplayTail(
        u, [raw](storage::WalRecordType type, Instance batch) -> Status {
          Result<uint64_t> applied =
              type == storage::WalRecordType::kAppend
                  ? AppendTo(*raw, std::move(batch), nullptr)
                  : RetractFrom(*raw, std::move(batch), nullptr);
          return applied.ok() ? Status::OK() : applied.status();
        });
    state->replaying = false;
    if (!replay.ok()) return replay.status();

    Database db(std::move(state));
    // Housekeeping deferred while replaying: fold the stack if policy
    // wants it, and seal a replayed tail that already outgrew the log
    // threshold. Best effort — the database is consistent either way.
    (void)db.MaybeCompact();
    {
      std::lock_guard<std::mutex> writer(db.state_->writer_mu);
      if (db.state_->storage->WantsCheckpoint()) {
        (void)CheckpointLocked(*db.state_, *db.state_->Current(),
                               /*rewrite=*/false);
      }
    }
    return db;
  }

  // Fresh open (in-memory, or initializing a new data directory).
  auto segment = std::make_shared<BaseStore>(u, std::move(edb));
  if (opts.eager_indexes) segment->BuildAllIndexes();
  auto set = std::make_shared<SegmentSet>();
  set->epoch = 0;
  set->total_facts = segment->instance().NumFacts();
  set->segments.push_back(std::move(segment));
  set->segment_epochs.push_back(0);
  set->segment_kinds.push_back(SegmentKind::kFacts);
  state->current = std::move(set);
  state->views.reset(new ViewManager(*state));
  if (engine != nullptr) {
    state->storage = std::move(engine);
    // Initial checkpoint: seal the seed segment and create the WAL so
    // the first commit has a log to land in. Publishes generation 1.
    SEQDL_RETURN_IF_ERROR(
        CheckpointLocked(*state, *state->current, /*rewrite=*/true));
  }
  return Database(std::move(state));
}

Result<Database> Database::Open(Universe& u, Instance edb) {
  return Open(u, std::move(edb), OpenOptions());
}

Result<Database> Database::Open(Universe& u, const OpenOptions& opts) {
  if (opts.data_dir.empty()) {
    return Status::InvalidArgument(
        "Database::Open(u, opts) requires OpenOptions::data_dir; use the "
        "Instance overload for an in-memory database");
  }
  return Open(u, Instance{}, opts);
}

bool Database::DataDirInitialized(const std::string& dir) {
  Result<bool> exists = storage::FileExists(dir + "/CURRENT");
  return exists.ok() && *exists;
}

Session Database::Snapshot() const {
  return Session(*state_->universe, state_->Current(), &state_->accum);
}

Session Database::OpenSession() const { return Snapshot(); }

Writer Database::MakeWriter() { return Writer(state_.get()); }

Result<uint64_t> Database::AppendTo(DbState& state, Instance delta,
                                    size_t* appended) {
  if (appended != nullptr) *appended = 0;
  std::lock_guard<std::mutex> writer(state.writer_mu);
  if (state.closed.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "database is closed: no further appends or commits");
  }
  std::shared_ptr<const SegmentSet> cur = state.Current();

  // Dedupe against what is currently *visible*, which keeps the per-fact
  // flip invariant: a fact's occurrences in stack order alternate
  // fact/tombstone/…, so visibility is decided by the newest occurrence
  // and visible enumeration across segments yields each fact exactly
  // once. (Re-appending a retracted fact is legal and publishes a fresh
  // occurrence above its tombstone.)
  Instance fresh;
  for (RelId rel : delta.Relations()) {
    for (const Tuple& t : delta.Tuples(rel)) {
      if (!StackVisible(cur->segments, cur->segment_kinds, rel, t)) {
        fresh.Add(rel, t);
      }
    }
  }
  if (fresh.Empty()) return cur->epoch;  // nothing new: the epoch holds

  // Durability point: the effective (post-dedupe) batch hits the WAL
  // before anything publishes. On error nothing is published — the
  // commit never happened, in memory or on disk. Replay skips this
  // (the record being replayed is already on disk).
  if (state.storage != nullptr && !state.replaying) {
    SEQDL_RETURN_IF_ERROR(state.storage->LogCommit(
        storage::WalRecordType::kAppend, *state.universe, fresh));
  }

  size_t fresh_facts = fresh.NumFacts();
  if (appended != nullptr) *appended = fresh_facts;
  auto segment =
      std::make_shared<BaseStore>(*state.universe, std::move(fresh));
  if (state.opts.eager_indexes) segment->BuildAllIndexes();

  auto next = std::make_shared<SegmentSet>();
  next->epoch = cur->epoch + 1;
  next->segments = cur->segments;
  next->segments.push_back(std::move(segment));
  next->segment_epochs = cur->segment_epochs;
  next->segment_epochs.push_back(next->epoch);
  next->segment_kinds = cur->segment_kinds;
  next->segment_kinds.push_back(SegmentKind::kFacts);
  next->shrink_floor = cur->shrink_floor;
  next->total_facts = cur->total_facts + fresh_facts;
  uint64_t epoch = next->epoch;
  state.Publish(std::move(next));

  // The data moved: note the epoch so the accumulated derived-run
  // measurements decay once something actually re-derives (deferred —
  // see StatsAccumulator::NoteEpoch; a maintained view serving across
  // appends is not fresh evidence that the derived shape drifted).
  state.accum.NoteEpoch();

  // Post-publish housekeeping, deferred during replay (a checkpoint
  // would rotate the WAL out from under the records still replaying).
  // Failures are swallowed: the append above is already durable and
  // published, the stack just stays deep until a caller-visible
  // Compact() surfaces the error.
  if (!state.replaying) {
    if (PolicyWantsCompaction(state, *state.Current())) {
      (void)CompactLocked(state);
    } else if (state.storage != nullptr && state.storage->WantsCheckpoint()) {
      (void)CheckpointLocked(state, *state.Current(), /*rewrite=*/false);
    }
  }
  return epoch;
}

Result<uint64_t> Database::Append(Instance delta, size_t* appended) {
  return AppendTo(*state_, std::move(delta), appended);
}

Result<uint64_t> Database::RetractFrom(DbState& state, Instance victims,
                                       size_t* retracted) {
  if (retracted != nullptr) *retracted = 0;
  std::lock_guard<std::mutex> writer(state.writer_mu);
  if (state.closed.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "database is closed: no further retractions");
  }
  std::shared_ptr<const SegmentSet> cur = state.Current();

  // Restrict to facts currently visible — the flip invariant's other
  // half: a tombstone is only ever published above a visible fact, so
  // occurrences keep alternating and tombstone segments stay pairwise
  // disjoint from each other at equal visibility depth.
  Instance hits;
  for (RelId rel : victims.Relations()) {
    for (const Tuple& t : victims.Tuples(rel)) {
      if (StackVisible(cur->segments, cur->segment_kinds, rel, t)) {
        hits.Add(rel, t);
      }
    }
  }
  if (hits.Empty()) return cur->epoch;  // nothing visible: epoch holds

  // Durability point, as in AppendTo.
  if (state.storage != nullptr && !state.replaying) {
    SEQDL_RETURN_IF_ERROR(state.storage->LogCommit(
        storage::WalRecordType::kRetract, *state.universe, hits));
  }

  size_t hit_facts = hits.NumFacts();
  if (retracted != nullptr) *retracted = hit_facts;
  auto segment =
      std::make_shared<BaseStore>(*state.universe, std::move(hits));
  if (state.opts.eager_indexes) segment->BuildAllIndexes();

  auto next = std::make_shared<SegmentSet>();
  next->epoch = cur->epoch + 1;
  next->segments = cur->segments;
  next->segments.push_back(std::move(segment));
  next->segment_epochs = cur->segment_epochs;
  next->segment_epochs.push_back(next->epoch);
  next->segment_kinds = cur->segment_kinds;
  next->segment_kinds.push_back(SegmentKind::kTombstones);
  next->shrink_floor = cur->shrink_floor;
  next->total_facts = cur->total_facts - hit_facts;
  uint64_t epoch = next->epoch;
  state.Publish(std::move(next));

  // A shrink is drift evidence exactly like an append: note the epoch so
  // cached plans recompile off smaller estimates once something
  // re-derives (satellite of the shrink-blindness fix — Stats() also
  // discounts tombstones directly).
  state.accum.NoteEpoch();

  if (!state.replaying) {
    if (PolicyWantsCompaction(state, *state.Current())) {
      (void)CompactLocked(state);
    } else if (state.storage != nullptr && state.storage->WantsCheckpoint()) {
      (void)CheckpointLocked(state, *state.Current(), /*rewrite=*/false);
    }
  }
  return epoch;
}

Result<uint64_t> Database::Retract(Instance victims, size_t* retracted) {
  return RetractFrom(*state_, std::move(victims), retracted);
}

bool Database::PolicyWantsCompaction(const DbState& state,
                                     const SegmentSet& set) {
  if (set.segments.size() <= 1) return false;
  const OpenOptions& opts = state.opts;
  if (opts.auto_compact_segments != 0 &&
      set.segments.size() > opts.auto_compact_segments) {
    return true;
  }
  if (opts.auto_compact_tail_ratio < 1.0 && set.total_facts > 0) {
    size_t head = set.segments.front()->instance().NumFacts();
    double tail_ratio =
        static_cast<double>(set.total_facts - head) /
        static_cast<double>(set.total_facts);
    if (tail_ratio > opts.auto_compact_tail_ratio) return true;
  }
  return false;
}

Status Database::CheckpointLocked(DbState& state, const SegmentSet& set,
                                  bool rewrite) {
  if (state.storage == nullptr) return Status::OK();
  std::vector<storage::CheckpointSegment> stack;
  stack.reserve(set.segments.size());
  for (size_t i = 0; i < set.segments.size(); ++i) {
    storage::CheckpointSegment seg;
    seg.facts = &set.segments[i]->instance();
    seg.kind = set.segment_kinds[i];
    seg.stamp = set.segment_epochs[i];
    stack.push_back(seg);
  }
  return state.storage->Checkpoint(*state.universe, set.epoch,
                                   set.shrink_floor, stack, rewrite);
}

Result<bool> Database::CompactLocked(DbState& state) {
  std::shared_ptr<const SegmentSet> cur = state.Current();
  if (cur->segments.size() <= 1) return false;

  // Apply the stack in order, copying (not moving) the segment instances:
  // open sessions still pin them. Tombstones apply and vanish — the
  // merged segment holds exactly the visible facts.
  Instance merged =
      MaterializeVisible(cur->segments, cur->segment_kinds);
  auto segment =
      std::make_shared<BaseStore>(*state.universe, std::move(merged));
  if (state.opts.eager_indexes) segment->BuildAllIndexes();

  auto next = std::make_shared<SegmentSet>();
  next->epoch = cur->epoch;  // same facts, same epoch: semantics unchanged
  next->total_facts = segment->instance().NumFacts();
  next->segments.push_back(std::move(segment));
  // The merged segment keeps the newest folded publish stamp: views at
  // least that fresh still see it as covered base, older views see one
  // (over-approximate but sound) delta segment.
  next->segment_epochs.push_back(*std::max_element(
      cur->segment_epochs.begin(), cur->segment_epochs.end()));
  next->segment_kinds.push_back(SegmentKind::kFacts);
  // Folding a tombstone destroys the evidence a stale view would need
  // for delta maintenance (a "new" merged fact segment can only grow a
  // view, never shrink it): raise the shrink floor so Refresh falls back
  // to a cold run for views older than the newest folded tombstone.
  next->shrink_floor = cur->shrink_floor;
  for (size_t i = 0; i < cur->segments.size(); ++i) {
    if (cur->segment_kinds[i] == SegmentKind::kTombstones) {
      next->shrink_floor =
          std::max(next->shrink_floor, cur->segment_epochs[i]);
    }
  }
  // Copy-forward-then-swap: in durable mode the merged segment seals to
  // disk and the new manifest generation publishes *first*. A failure —
  // or a crash anywhere inside — leaves CURRENT naming the old
  // generation and the in-memory stack untouched; open sessions keep
  // their pins either way (segments are shared_ptr-owned in memory, not
  // read through the deleted files).
  SEQDL_RETURN_IF_ERROR(CheckpointLocked(state, *next, /*rewrite=*/true));
  state.Publish(std::move(next));
  return true;
}

Result<bool> Database::Compact() {
  std::lock_guard<std::mutex> writer(state_->writer_mu);
  if (state_->closed.load(std::memory_order_relaxed)) return false;
  return CompactLocked(*state_);
}

Result<bool> Database::MaybeCompact() {
  std::lock_guard<std::mutex> writer(state_->writer_mu);
  if (state_->closed.load(std::memory_order_relaxed)) return false;
  if (!PolicyWantsCompaction(*state_, *state_->Current())) return false;
  return CompactLocked(*state_);
}

void Database::Close() {
  // Take the writer mutex so Close() serializes behind any in-flight
  // append: after Close() returns, the published epoch is final.
  std::lock_guard<std::mutex> writer(state_->writer_mu);
  if (!state_->closed.load(std::memory_order_relaxed) &&
      state_->storage != nullptr &&
      state_->storage->info().wal_bytes > 0) {
    // Seal the WAL tail so the next Open skips replay. Best effort —
    // on failure the WAL itself still recovers everything.
    (void)CheckpointLocked(*state_, *state_->Current(), /*rewrite=*/false);
  }
  state_->closed.store(true, std::memory_order_relaxed);
}

bool Database::closed() const {
  return state_->closed.load(std::memory_order_relaxed);
}

uint64_t Database::epoch() const { return state_->Current()->epoch; }

size_t Database::NumSegments() const {
  return state_->Current()->segments.size();
}

size_t Database::NumFacts() const { return state_->Current()->total_facts; }

size_t Database::NumTombstones() const {
  std::shared_ptr<const SegmentSet> cur = state_->Current();
  size_t n = 0;
  for (SegmentKind k : cur->segment_kinds) {
    if (k == SegmentKind::kTombstones) ++n;
  }
  return n;
}

StoreStats Database::Stats() const {
  std::shared_ptr<const SegmentSet> cur = state_->Current();
  StoreStats stats;
  // Per-segment measurements are call_once-cached inside each BaseStore.
  // Fact segments sum (visible enumeration yields each fact once modulo
  // the documented shared-key bucket overcount); tombstone segments
  // *discount* — each tombstoned fact was measured exactly once in an
  // older fact segment, so subtracting makes a shrink visible to
  // StatsDrift instead of leaving cached plans ranked off stale, larger
  // relations.
  StoreStats discount;
  for (size_t i = 0; i < cur->segments.size(); ++i) {
    if (cur->segment_kinds[i] == SegmentKind::kFacts) {
      stats.MergeFrom(cur->segments[i]->Stats());
    } else {
      discount.MergeFrom(cur->segments[i]->Stats());
    }
  }
  stats.DiscountFrom(discount);
  stats.MergeFrom(state_->accum.Snapshot());
  return stats;
}

Result<PreparedProgram> Database::Compile(Program p,
                                          const CompileOptions& opts) const {
  StoreStats stats = Stats();
  CompileOptions with_stats = opts;
  with_stats.stats = &stats;
  return Engine::Compile(*state_->universe, std::move(p), with_stats);
}

Result<PreparedProgram> Database::Compile(Program p) const {
  return Compile(std::move(p), CompileOptions());
}

ViewManager& Database::views() const { return *state_->views; }

storage::StorageInfo Database::storage_info() const {
  return state_->storage != nullptr ? state_->storage->info()
                                    : storage::StorageInfo{};
}

Instance Database::edb() const {
  std::shared_ptr<const SegmentSet> cur = state_->Current();
  return MaterializeVisible(cur->segments, cur->segment_kinds);
}

const BaseStore& Database::base() const {
  return *state_->Current()->segments.front();
}

size_t Database::NumIndexedColumns() const {
  std::shared_ptr<const SegmentSet> cur = state_->Current();
  size_t n = 0;
  for (const auto& seg : cur->segments) {
    n += seg->NumIndexedColumns();
  }
  return n;
}

Result<Instance> Session::Run(const PreparedProgram& prog,
                              const RunOptions& opts,
                              EvalStats* stats) const {
  if (&prog.universe() != universe_) {
    return Status::InvalidArgument(
        "program was compiled against a different Universe than the "
        "database was opened with");
  }
  std::vector<const BaseStore*> segments;
  segments.reserve(pinned_->segments.size());
  for (const auto& seg : pinned_->segments) segments.push_back(seg.get());
  // RunOnStack fills EvalStats::derived_stats when asked; route it
  // through a local EvalStats if the caller did not pass one, so the
  // measurement still reaches the database's accumulator.
  EvalStats local;
  EvalStats* sink =
      stats != nullptr ? stats
                       : (opts.collect_derived_stats ? &local : nullptr);
  Result<Instance> out =
      prog.RunOnStack(segments, pinned_->segment_kinds, opts, sink);
  if (out.ok() && accum_ != nullptr) {
    // A full recomputation happened: apply any epoch decays deferred by
    // appends, then record what this run actually derived.
    accum_->AgeOnRecompute(StatsAccumulator::kEpochDecay);
    if (opts.collect_derived_stats && sink != nullptr) {
      accum_->Record(sink->derived_stats);
    }
  }
  return out;
}

Result<Instance> Session::RunQuery(const PreparedProgram& prog, RelId output,
                                   const RunOptions& opts,
                                   EvalStats* stats) const {
  SEQDL_ASSIGN_OR_RETURN(Instance derived, Run(prog, opts, stats));
  return derived.Project({output});
}

Instance Session::edb() const {
  return MaterializeVisible(pinned_->segments, pinned_->segment_kinds);
}

Result<uint64_t> Writer::Commit() {
  Instance batch = std::move(staged_);
  staged_ = Instance{};
  Instance victims = std::move(retract_staged_);
  retract_staged_ = Instance{};
  SEQDL_ASSIGN_OR_RETURN(uint64_t epoch,
                         Database::AppendTo(*state_, std::move(batch),
                                            nullptr));
  if (victims.Empty()) return epoch;
  return Database::RetractFrom(*state_, std::move(victims), nullptr);
}

}  // namespace seqdl
