#include "src/engine/database.h"

#include <algorithm>
#include <utility>

#include "src/view/view.h"

namespace seqdl {

Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;
Database::~Database() = default;
Database::DbState::DbState() = default;
Database::DbState::~DbState() = default;

namespace {

/// True iff some segment of `set` already holds (rel, t).
bool StackContains(const std::vector<std::shared_ptr<const BaseStore>>& segs,
                   RelId rel, const Tuple& t) {
  for (const auto& seg : segs) {
    if (seg->Contains(rel, t)) return true;
  }
  return false;
}

}  // namespace

Result<Database> Database::Open(Universe& u, Instance edb,
                                const OpenOptions& opts) {
  auto state = std::make_unique<DbState>();
  state->universe = &u;
  state->opts = opts;
  auto segment = std::make_shared<BaseStore>(u, std::move(edb));
  if (opts.eager_indexes) segment->BuildAllIndexes();
  auto set = std::make_shared<SegmentSet>();
  set->epoch = 0;
  set->total_facts = segment->instance().NumFacts();
  set->segments.push_back(std::move(segment));
  set->segment_epochs.push_back(0);
  state->current = std::move(set);
  state->views.reset(new ViewManager(*state));
  return Database(std::move(state));
}

Result<Database> Database::Open(Universe& u, Instance edb) {
  return Open(u, std::move(edb), OpenOptions());
}

Session Database::Snapshot() const {
  return Session(*state_->universe, state_->Current(), &state_->accum);
}

Session Database::OpenSession() const { return Snapshot(); }

Writer Database::MakeWriter() { return Writer(state_.get()); }

Result<uint64_t> Database::AppendTo(DbState& state, Instance delta,
                                    size_t* appended) {
  if (appended != nullptr) *appended = 0;
  std::lock_guard<std::mutex> writer(state.writer_mu);
  if (state.closed.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "database is closed: no further appends or commits");
  }
  std::shared_ptr<const SegmentSet> cur = state.Current();

  // Dedupe against the current stack so segments stay pairwise disjoint
  // (multi-segment scans then enumerate each base fact exactly once).
  Instance fresh;
  for (RelId rel : delta.Relations()) {
    for (const Tuple& t : delta.Tuples(rel)) {
      if (!StackContains(cur->segments, rel, t)) fresh.Add(rel, t);
    }
  }
  if (fresh.Empty()) return cur->epoch;  // nothing new: the epoch holds

  size_t fresh_facts = fresh.NumFacts();
  if (appended != nullptr) *appended = fresh_facts;
  auto segment =
      std::make_shared<BaseStore>(*state.universe, std::move(fresh));
  if (state.opts.eager_indexes) segment->BuildAllIndexes();

  auto next = std::make_shared<SegmentSet>();
  next->epoch = cur->epoch + 1;
  next->segments = cur->segments;
  next->segments.push_back(std::move(segment));
  next->segment_epochs = cur->segment_epochs;
  next->segment_epochs.push_back(next->epoch);
  next->total_facts = cur->total_facts + fresh_facts;
  uint64_t epoch = next->epoch;
  state.Publish(std::move(next));

  // The data moved: note the epoch so the accumulated derived-run
  // measurements decay once something actually re-derives (deferred —
  // see StatsAccumulator::NoteEpoch; a maintained view serving across
  // appends is not fresh evidence that the derived shape drifted).
  state.accum.NoteEpoch();

  if (PolicyWantsCompaction(state, *state.Current())) CompactLocked(state);
  return epoch;
}

Result<uint64_t> Database::Append(Instance delta, size_t* appended) {
  return AppendTo(*state_, std::move(delta), appended);
}

bool Database::PolicyWantsCompaction(const DbState& state,
                                     const SegmentSet& set) {
  if (set.segments.size() <= 1) return false;
  const OpenOptions& opts = state.opts;
  if (opts.auto_compact_segments != 0 &&
      set.segments.size() > opts.auto_compact_segments) {
    return true;
  }
  if (opts.auto_compact_tail_ratio < 1.0 && set.total_facts > 0) {
    size_t head = set.segments.front()->instance().NumFacts();
    double tail_ratio =
        static_cast<double>(set.total_facts - head) /
        static_cast<double>(set.total_facts);
    if (tail_ratio > opts.auto_compact_tail_ratio) return true;
  }
  return false;
}

bool Database::CompactLocked(DbState& state) {
  std::shared_ptr<const SegmentSet> cur = state.Current();
  if (cur->segments.size() <= 1) return false;

  // Copy (not move) the segment instances: open sessions still pin them.
  Instance merged;
  for (const auto& seg : cur->segments) {
    merged.UnionWith(seg->instance());
  }
  auto segment =
      std::make_shared<BaseStore>(*state.universe, std::move(merged));
  if (state.opts.eager_indexes) segment->BuildAllIndexes();

  auto next = std::make_shared<SegmentSet>();
  next->epoch = cur->epoch;  // same facts, same epoch: semantics unchanged
  next->total_facts = segment->instance().NumFacts();
  next->segments.push_back(std::move(segment));
  // The merged segment keeps the newest folded publish stamp: views at
  // least that fresh still see it as covered base, older views see one
  // (over-approximate but sound) delta segment.
  next->segment_epochs.push_back(*std::max_element(
      cur->segment_epochs.begin(), cur->segment_epochs.end()));
  state.Publish(std::move(next));
  return true;
}

bool Database::Compact() {
  std::lock_guard<std::mutex> writer(state_->writer_mu);
  if (state_->closed.load(std::memory_order_relaxed)) return false;
  return CompactLocked(*state_);
}

bool Database::MaybeCompact() {
  std::lock_guard<std::mutex> writer(state_->writer_mu);
  if (state_->closed.load(std::memory_order_relaxed)) return false;
  if (!PolicyWantsCompaction(*state_, *state_->Current())) return false;
  return CompactLocked(*state_);
}

void Database::Close() {
  // Take the writer mutex so Close() serializes behind any in-flight
  // append: after Close() returns, the published epoch is final.
  std::lock_guard<std::mutex> writer(state_->writer_mu);
  state_->closed.store(true, std::memory_order_relaxed);
}

bool Database::closed() const {
  return state_->closed.load(std::memory_order_relaxed);
}

uint64_t Database::epoch() const { return state_->Current()->epoch; }

size_t Database::NumSegments() const {
  return state_->Current()->segments.size();
}

size_t Database::NumFacts() const { return state_->Current()->total_facts; }

StoreStats Database::Stats() const {
  std::shared_ptr<const SegmentSet> cur = state_->Current();
  StoreStats stats;
  // Per-segment measurements are call_once-cached inside each BaseStore;
  // segments are disjoint, so summing them is the exact merged shape
  // modulo the documented shared-key bucket overcount.
  for (const auto& seg : cur->segments) {
    stats.MergeFrom(seg->Stats());
  }
  stats.MergeFrom(state_->accum.Snapshot());
  return stats;
}

Result<PreparedProgram> Database::Compile(Program p,
                                          const CompileOptions& opts) const {
  StoreStats stats = Stats();
  CompileOptions with_stats = opts;
  with_stats.stats = &stats;
  return Engine::Compile(*state_->universe, std::move(p), with_stats);
}

Result<PreparedProgram> Database::Compile(Program p) const {
  return Compile(std::move(p), CompileOptions());
}

ViewManager& Database::views() const { return *state_->views; }

Instance Database::edb() const {
  std::shared_ptr<const SegmentSet> cur = state_->Current();
  Instance out;
  for (const auto& seg : cur->segments) {
    out.UnionWith(seg->instance());
  }
  return out;
}

const BaseStore& Database::base() const {
  return *state_->Current()->segments.front();
}

size_t Database::NumIndexedColumns() const {
  std::shared_ptr<const SegmentSet> cur = state_->Current();
  size_t n = 0;
  for (const auto& seg : cur->segments) {
    n += seg->NumIndexedColumns();
  }
  return n;
}

Result<Instance> Session::Run(const PreparedProgram& prog,
                              const RunOptions& opts,
                              EvalStats* stats) const {
  if (&prog.universe() != universe_) {
    return Status::InvalidArgument(
        "program was compiled against a different Universe than the "
        "database was opened with");
  }
  std::vector<const BaseStore*> segments;
  segments.reserve(pinned_->segments.size());
  for (const auto& seg : pinned_->segments) segments.push_back(seg.get());
  // RunOnSegments fills EvalStats::derived_stats when asked; route it
  // through a local EvalStats if the caller did not pass one, so the
  // measurement still reaches the database's accumulator.
  EvalStats local;
  EvalStats* sink =
      stats != nullptr ? stats
                       : (opts.collect_derived_stats ? &local : nullptr);
  Result<Instance> out = prog.RunOnSegments(segments, opts, sink);
  if (out.ok() && accum_ != nullptr) {
    // A full recomputation happened: apply any epoch decays deferred by
    // appends, then record what this run actually derived.
    accum_->AgeOnRecompute(StatsAccumulator::kEpochDecay);
    if (opts.collect_derived_stats && sink != nullptr) {
      accum_->Record(sink->derived_stats);
    }
  }
  return out;
}

Result<Instance> Session::RunQuery(const PreparedProgram& prog, RelId output,
                                   const RunOptions& opts,
                                   EvalStats* stats) const {
  SEQDL_ASSIGN_OR_RETURN(Instance derived, Run(prog, opts, stats));
  return derived.Project({output});
}

Instance Session::edb() const {
  Instance out;
  for (const auto& seg : pinned_->segments) {
    out.UnionWith(seg->instance());
  }
  return out;
}

Result<uint64_t> Writer::Commit() {
  Instance batch = std::move(staged_);
  staged_ = Instance{};
  return Database::AppendTo(*state_, std::move(batch), nullptr);
}

}  // namespace seqdl
