#include "src/engine/database.h"

namespace seqdl {

Result<Database> Database::Open(Universe& u, Instance edb,
                                const OpenOptions& opts) {
  auto base = std::make_unique<BaseStore>(u, std::move(edb));
  if (opts.eager_indexes) base->BuildAllIndexes();
  return Database(u, std::move(base));
}

Result<Database> Database::Open(Universe& u, Instance edb) {
  return Open(u, std::move(edb), OpenOptions());
}

Session Database::OpenSession() const { return Session(*universe_, *base_); }

Result<Instance> Session::Run(const PreparedProgram& prog,
                              const RunOptions& opts,
                              EvalStats* stats) const {
  if (&prog.universe() != universe_) {
    return Status::InvalidArgument(
        "program was compiled against a different Universe than the "
        "database was opened with");
  }
  return prog.RunOnBase(*base_, opts, stats);
}

Result<Instance> Session::RunQuery(const PreparedProgram& prog, RelId output,
                                   const RunOptions& opts,
                                   EvalStats* stats) const {
  SEQDL_ASSIGN_OR_RETURN(Instance derived, Run(prog, opts, stats));
  return derived.Project({output});
}

}  // namespace seqdl
