#include "src/engine/database.h"

namespace seqdl {

Result<Database> Database::Open(Universe& u, Instance edb,
                                const OpenOptions& opts) {
  auto base = std::make_unique<BaseStore>(u, std::move(edb));
  if (opts.eager_indexes) base->BuildAllIndexes();
  return Database(u, std::move(base));
}

Result<Database> Database::Open(Universe& u, Instance edb) {
  return Open(u, std::move(edb), OpenOptions());
}

Session Database::OpenSession() const {
  return Session(*universe_, *base_, accum_.get());
}

StoreStats Database::Stats() const {
  StoreStats stats = base_->Stats();
  stats.MergeFrom(accum_->Snapshot());
  return stats;
}

Result<PreparedProgram> Database::Compile(Program p,
                                          const CompileOptions& opts) const {
  StoreStats stats = Stats();
  CompileOptions with_stats = opts;
  with_stats.stats = &stats;
  return Engine::Compile(*universe_, std::move(p), with_stats);
}

Result<PreparedProgram> Database::Compile(Program p) const {
  return Compile(std::move(p), CompileOptions());
}

Result<Instance> Session::Run(const PreparedProgram& prog,
                              const RunOptions& opts,
                              EvalStats* stats) const {
  if (&prog.universe() != universe_) {
    return Status::InvalidArgument(
        "program was compiled against a different Universe than the "
        "database was opened with");
  }
  // RunOnBase fills EvalStats::derived_stats when asked; route it through
  // a local EvalStats if the caller did not pass one, so the measurement
  // still reaches the database's accumulator.
  EvalStats local;
  EvalStats* sink =
      stats != nullptr ? stats
                       : (opts.collect_derived_stats ? &local : nullptr);
  Result<Instance> out = prog.RunOnBase(*base_, opts, sink);
  if (out.ok() && opts.collect_derived_stats && sink != nullptr &&
      accum_ != nullptr) {
    accum_->Record(sink->derived_stats);
  }
  return out;
}

Result<Instance> Session::RunQuery(const PreparedProgram& prog, RelId output,
                                   const RunOptions& opts,
                                   EvalStats* stats) const {
  SEQDL_ASSIGN_OR_RETURN(Instance derived, Run(prog, opts, stats));
  return derived.Project({output});
}

}  // namespace seqdl
