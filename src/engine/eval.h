// Stratified evaluation of Sequence Datalog programs (paper §2.3).
//
// Strata are applied in sequence; each stratum is evaluated to its least
// fixpoint with semi-naive iteration (naive iteration is available for the
// ablation benchmark). Since Sequence Datalog programs need not terminate
// (Example 2.3), evaluation enforces budgets and reports
// kResourceExhausted when they are exceeded.
#ifndef SEQDL_ENGINE_EVAL_H_
#define SEQDL_ENGINE_EVAL_H_

#include <cstddef>

#include "src/base/status.h"
#include "src/engine/instance.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct EvalOptions {
  /// Maximum number of derived facts before giving up.
  size_t max_facts = 5'000'000;
  /// Maximum number of fixpoint rounds across all strata.
  size_t max_iterations = 1'000'000;
  /// Maximum length of any derived path.
  size_t max_path_length = 1'000'000;
  /// Use semi-naive (delta) iteration; false = naive re-evaluation.
  bool seminaive = true;
  /// Greedily reorder positive body scans so each joins on already-bound
  /// variables where possible; false = scan in body order.
  bool reorder_scans = true;
  /// Validate safety/stratification before evaluating.
  bool validate = true;
};

struct EvalStats {
  size_t derived_facts = 0;
  size_t rounds = 0;
  size_t rule_firings = 0;
};

/// Evaluates `p` on `input`; returns input plus all derived IDB facts.
Result<Instance> Eval(Universe& u, const Program& p, const Instance& input,
                      const EvalOptions& opts = {},
                      EvalStats* stats = nullptr);

/// Evaluates and projects onto a single output relation (the paper's notion
/// of a program computing a query from Γ to S).
Result<Instance> EvalQuery(Universe& u, const Program& p,
                           const Instance& input, RelId output,
                           const EvalOptions& opts = {});

}  // namespace seqdl

#endif  // SEQDL_ENGINE_EVAL_H_
