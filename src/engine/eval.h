// Legacy one-shot evaluation entry points.
//
// Eval()/EvalQuery() validate, plan, and execute in a single call. They
// are thin wrappers over the compile-once/run-many API in engine.h
// (Engine::Compile + PreparedProgram::Run), which itself runs over a
// throwaway indexed base store per call; prefer that API whenever a
// program is evaluated against more than one instance, since it pays the
// validation/stratification/planning cost exactly once — and see
// database.h (Database::Open + Session) to also pay the input indexing
// cost exactly once across many runs and threads.
#ifndef SEQDL_ENGINE_EVAL_H_
#define SEQDL_ENGINE_EVAL_H_

#include <cstddef>

#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// One-shot evaluation options: the union of CompileOptions and
/// RunOptions (see engine.h).
struct EvalOptions {
  /// Maximum number of derived facts before giving up.
  size_t max_facts = 5'000'000;
  /// Maximum number of fixpoint rounds across all strata.
  size_t max_iterations = 1'000'000;
  /// Maximum length of any derived path.
  size_t max_path_length = 1'000'000;
  /// Use semi-naive (delta) iteration; false = naive re-evaluation.
  bool seminaive = true;
  /// Greedily reorder positive body scans so each joins on already-bound
  /// variables where possible; false = scan in body order.
  bool reorder_scans = true;
  /// Validate safety/stratification before evaluating.
  bool validate = true;
  /// Probe column indexes for scans with a ground key position.
  bool use_index = true;
  /// Index semi-naive delta sets once they hold at least this many tuples
  /// (see RunOptions::delta_index_threshold).
  size_t delta_index_threshold = 32;
};

/// Evaluates `p` on `input`; returns input plus all derived IDB facts.
/// Compiles the program on every call; see engine.h to compile once.
Result<Instance> Eval(Universe& u, const Program& p, const Instance& input,
                      const EvalOptions& opts = {},
                      EvalStats* stats = nullptr);

/// Evaluates and projects onto a single output relation (the paper's notion
/// of a program computing a query from Γ to S).
Result<Instance> EvalQuery(Universe& u, const Program& p,
                           const Instance& input, RelId output,
                           const EvalOptions& opts = {});

}  // namespace seqdl

#endif  // SEQDL_ENGINE_EVAL_H_
