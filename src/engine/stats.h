// Store statistics: measured per-(relation, column, index-family) bucket
// shapes, the input of the selectivity-aware planner (plan.h).
//
// For every (relation, column) pair the engine maintains three hash index
// families (whole-value, first-value, last-value — see index.h). The cost
// of answering a scan step through one of them is the size of the probed
// bucket, so the planner ranks candidate access paths by each family's
// *mean bucket size*: a near-constant column has one huge bucket (mean ≈
// relation size, probing it is as bad as a full scan), a high-cardinality
// key column has singleton buckets (mean ≈ 1). StoreStats carries those
// measurements; BaseStore::Stats() computes them over a fixed EDB,
// ComputeInstanceStats over any instance (e.g. the derived IDB of a
// finished run), and Database::Stats() merges both so long-lived serving
// processes re-plan from what actually accumulated.
//
// Statistics are estimates feeding a cost model, never semantics: every
// access path the planner can pick enumerates a sound overapproximation
// that MatchArgs filters exactly, so plans chosen from stale, merged, or
// absent statistics all produce byte-identical results (enforced by
// tests/differential_test.cc).
#ifndef SEQDL_ENGINE_STATS_H_
#define SEQDL_ENGINE_STATS_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/engine/instance.h"
#include "src/term/universe.h"

namespace seqdl {

/// Bucket shape of one index family of one (relation, column) pair.
struct FamilyStats {
  /// Number of distinct keys (= buckets).
  size_t buckets = 0;
  /// Total indexed tuples. For first/last-value families, tuples whose
  /// column holds the empty path are not indexed and do not count.
  size_t entries = 0;
  /// Largest single bucket.
  size_t max_bucket = 0;

  /// Expected tuples per probe: entries / buckets (0 when empty).
  double MeanBucket() const {
    return buckets == 0 ? 0.0
                        : static_cast<double>(entries) /
                              static_cast<double>(buckets);
  }

  void MergeFrom(const FamilyStats& other) {
    // Summing bucket counts overcounts keys shared between the merged
    // stores; the result is an estimate (an upper bound on distinct keys),
    // which is all the cost model needs.
    buckets += other.buckets;
    entries += other.entries;
    if (other.max_bucket > max_bucket) max_bucket = other.max_bucket;
  }
};

/// All three index families of one column.
struct ColumnStats {
  FamilyStats whole;
  FamilyStats first;
  FamilyStats last;
};

/// One relation: tuple count plus per-column family stats.
struct RelationStats {
  size_t tuples = 0;
  std::vector<ColumnStats> columns;
};

/// Measured statistics for a whole store, keyed by relation. The planner's
/// Estimate* accessors fall back to fixed priors for relations the stats
/// never saw (typically IDB relations, whose contents only exist at run
/// time): a whole-value probe is assumed near-selective, prefix/suffix
/// probes somewhat less, and a full scan expensive — which reproduces the
/// legacy whole > prefix/suffix > full preference in the absence of data.
struct StoreStats {
  std::map<RelId, RelationStats> relations;

  /// Priors for relations absent from `relations`.
  static constexpr double kUnknownWhole = 1.0;
  static constexpr double kUnknownFirstLast = 8.0;
  static constexpr double kUnknownScan = 256.0;

  /// Expected tuples enumerated by a whole-value probe of (rel, col).
  double EstimateWhole(RelId rel, uint32_t col) const;
  /// Expected tuples enumerated by a first-value probe of (rel, col).
  double EstimateFirst(RelId rel, uint32_t col) const;
  /// Expected tuples enumerated by a last-value probe of (rel, col).
  double EstimateLast(RelId rel, uint32_t col) const;
  /// Expected tuples enumerated by a full scan of `rel`.
  double EstimateScan(RelId rel) const;

  /// True iff `rel` was measured (estimates are data, not priors).
  bool Knows(RelId rel) const { return relations.count(rel) > 0; }

  size_t NumRelations() const { return relations.size(); }

  /// Folds `other` into this by summing (see FamilyStats::MergeFrom for
  /// the bucket overcount caveat). Used by Database::Stats() to combine
  /// base-EDB measurements with the accumulated derived-fact measurements
  /// — disjoint fact sets, so summing is the right estimate.
  void MergeFrom(const StoreStats& other);

  /// Subtracts `other`'s counters from this, flooring at zero (relations
  /// that discount to zero tuples are dropped). Used by Database::Stats()
  /// to discount tombstone segments: each tombstoned fact was measured
  /// exactly once in an older fact segment, so tuple counts come out
  /// exact and the bucket shapes stay sane estimates. Without this a
  /// retraction epoch would be invisible to StatsDrift and cached plans
  /// would keep ranking access paths off stale, larger buckets.
  void DiscountFrom(const StoreStats& other);

  /// Folds `other` into this by keeping, per relation, whichever
  /// measurement saw more tuples. Used by StatsAccumulator: repeated runs
  /// of the same program re-derive the same facts, so summing them would
  /// inflate estimates without bound — "the largest instance observed so
  /// far" is bounded by reality and exact for the repeated-query loop.
  void ObserveMax(const StoreStats& other);

  /// Scales every counter by `factor` (rounding down; relations that
  /// decay to zero tuples are dropped). The decay step of
  /// StatsAccumulator::Age.
  void Scale(double factor);

  /// Deterministic multi-line rendering, one row per (relation, column,
  /// family): "R  col 0  whole  buckets=12 entries=30 mean=2.5 max=4".
  std::string ToString(const Universe& u) const;

 private:
  const ColumnStats* Find(RelId rel, uint32_t col) const;
};

/// Measures `inst` in one pass: per (relation, column), the bucket shape
/// each of the three index families would have. Pure computation over an
/// instance the caller keeps alive; never builds or touches real indexes.
StoreStats ComputeInstanceStats(const Universe& u, const Instance& inst);

/// Thread-safe accumulator of per-run derived-fact statistics. Database
/// owns one; Session::Run records each run's derived stats into it (when
/// RunOptions::collect_derived_stats is set), and Database::Stats() merges
/// a snapshot into the base-EDB measurements. Recording keeps the largest
/// observed measurement per relation (ObserveMax), so repeating a query
/// forever cannot inflate its estimates — and aging decays that maximum
/// as epochs bump, so the accumulator also *forgets*: after the workload
/// drifts (or compaction shrinks the base), a few epochs of smaller
/// observations win over a stale all-time peak and estimates can come
/// back down.
///
/// Aging is *deferred*: Append notes the epoch bump (NoteEpoch), but the
/// decay only applies once a run actually recomputes the derived facts
/// (AgeOnRecompute — called from Session::Run and ViewManager cold
/// materializations). A maintained view answering queries across many
/// appends therefore never decays the measurements on its own — there is
/// no fresh evidence of drift until something re-derives — so cached
/// plans stop recompiling on StatsDrift that never happened.
class StatsAccumulator {
 public:
  /// The decay applied per noted epoch bump.
  static constexpr double kEpochDecay = 0.5;

  void Record(const StoreStats& s);
  StoreStats Snapshot() const;
  /// Multiplies every recorded counter by `factor` in (0, 1] immediately.
  void Age(double factor);

  /// Notes one committed epoch bump; the matching decay is deferred until
  /// the next AgeOnRecompute.
  void NoteEpoch();
  /// Applies `factor` once per epoch noted since the last recompute
  /// (no-op when none are pending). Called by runs that re-derive from
  /// the current EDB — the moment decayed estimates can actually be
  /// replaced by fresh observations.
  void AgeOnRecompute(double factor);
  /// Epoch bumps noted but not yet aged (tests/diagnostics).
  size_t PendingEpochs() const;

 private:
  mutable std::mutex mu_;
  StoreStats total_;
  size_t pending_epochs_ = 0;
};

/// Relative drift between two measurements: the largest per-relation
/// relative change in tuple count over the union of their relations
/// (a relation present on one side only counts as drift 1). 0 = same
/// shape; >= `threshold` is the serve loop's cue to recompile cached
/// programs against fresh statistics.
double StatsDrift(const StoreStats& before, const StoreStats& after);

}  // namespace seqdl

#endif  // SEQDL_ENGINE_STATS_H_
