#include "src/engine/stats.h"

#include <algorithm>
#include <cstdio>
#include <span>
#include <unordered_map>

#include "src/term/value.h"

namespace seqdl {

namespace {

/// Finalizes one family from a key -> bucket-size count map.
template <typename Key, typename Hash>
FamilyStats Finalize(const std::unordered_map<Key, size_t, Hash>& counts) {
  FamilyStats f;
  f.buckets = counts.size();
  for (const auto& [key, n] : counts) {
    f.entries += n;
    if (n > f.max_bucket) f.max_bucket = n;
  }
  return f;
}

std::string FormatFamily(const char* name, const FamilyStats& f) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%-5s buckets=%zu entries=%zu mean=%.2f max=%zu", name,
                f.buckets, f.entries, f.MeanBucket(), f.max_bucket);
  return buf;
}

}  // namespace

const ColumnStats* StoreStats::Find(RelId rel, uint32_t col) const {
  auto it = relations.find(rel);
  if (it == relations.end() || col >= it->second.columns.size()) {
    return nullptr;
  }
  return &it->second.columns[col];
}

double StoreStats::EstimateWhole(RelId rel, uint32_t col) const {
  const ColumnStats* c = Find(rel, col);
  return c == nullptr ? kUnknownWhole : c->whole.MeanBucket();
}

double StoreStats::EstimateFirst(RelId rel, uint32_t col) const {
  const ColumnStats* c = Find(rel, col);
  return c == nullptr ? kUnknownFirstLast : c->first.MeanBucket();
}

double StoreStats::EstimateLast(RelId rel, uint32_t col) const {
  const ColumnStats* c = Find(rel, col);
  return c == nullptr ? kUnknownFirstLast : c->last.MeanBucket();
}

double StoreStats::EstimateScan(RelId rel) const {
  auto it = relations.find(rel);
  return it == relations.end() ? kUnknownScan
                               : static_cast<double>(it->second.tuples);
}

void StoreStats::MergeFrom(const StoreStats& other) {
  for (const auto& [rel, theirs] : other.relations) {
    RelationStats& mine = relations[rel];
    mine.tuples += theirs.tuples;
    if (mine.columns.size() < theirs.columns.size()) {
      mine.columns.resize(theirs.columns.size());
    }
    for (size_t col = 0; col < theirs.columns.size(); ++col) {
      mine.columns[col].whole.MergeFrom(theirs.columns[col].whole);
      mine.columns[col].first.MergeFrom(theirs.columns[col].first);
      mine.columns[col].last.MergeFrom(theirs.columns[col].last);
    }
  }
}

void StoreStats::DiscountFrom(const StoreStats& other) {
  auto floor_sub = [](size_t a, size_t b) { return a > b ? a - b : 0; };
  for (const auto& [rel, theirs] : other.relations) {
    auto it = relations.find(rel);
    if (it == relations.end()) continue;
    RelationStats& mine = it->second;
    mine.tuples = floor_sub(mine.tuples, theirs.tuples);
    if (mine.tuples == 0) {
      relations.erase(it);
      continue;
    }
    size_t cols = std::min(mine.columns.size(), theirs.columns.size());
    for (size_t col = 0; col < cols; ++col) {
      const ColumnStats& t = theirs.columns[col];
      ColumnStats& m = mine.columns[col];
      // Entries subtract exactly (each tombstoned fact was indexed once);
      // bucket counts only shrink when a whole key disappears, which we
      // cannot see from the aggregate — keeping them is the conservative
      // estimate (mean bucket sizes shrink, never inflate).
      m.whole.entries = floor_sub(m.whole.entries, t.whole.entries);
      m.first.entries = floor_sub(m.first.entries, t.first.entries);
      m.last.entries = floor_sub(m.last.entries, t.last.entries);
    }
  }
}

std::string StoreStats::ToString(const Universe& u) const {
  std::string out;
  for (const auto& [rel, rs] : relations) {
    out += u.RelName(rel) + "  tuples=" + std::to_string(rs.tuples) + "\n";
    for (size_t col = 0; col < rs.columns.size(); ++col) {
      const ColumnStats& c = rs.columns[col];
      std::string prefix = "  col " + std::to_string(col) + "  ";
      out += prefix + FormatFamily("whole", c.whole) + "\n";
      out += prefix + FormatFamily("first", c.first) + "\n";
      out += prefix + FormatFamily("last", c.last) + "\n";
    }
  }
  return out;
}

StoreStats ComputeInstanceStats(const Universe& u, const Instance& inst) {
  StoreStats stats;
  for (RelId rel : inst.Relations()) {
    const TupleSet& tuples = inst.Tuples(rel);
    RelationStats rs;
    rs.tuples = tuples.size();
    uint32_t arity = u.RelArity(rel);
    rs.columns.resize(arity);
    for (uint32_t col = 0; col < arity; ++col) {
      std::unordered_map<PathId, size_t, std::hash<PathId>> whole;
      std::unordered_map<Value, size_t, ValueHash> first, last;
      for (const Tuple& t : tuples) {
        if (col >= t.size()) continue;
        ++whole[t[col]];
        std::span<const Value> path = u.GetPath(t[col]);
        if (!path.empty()) {
          ++first[path.front()];
          ++last[path.back()];
        }
      }
      rs.columns[col].whole = Finalize(whole);
      rs.columns[col].first = Finalize(first);
      rs.columns[col].last = Finalize(last);
    }
    stats.relations.emplace(rel, std::move(rs));
  }
  return stats;
}

void StoreStats::ObserveMax(const StoreStats& other) {
  for (const auto& [rel, theirs] : other.relations) {
    auto [it, inserted] = relations.try_emplace(rel, theirs);
    if (!inserted && theirs.tuples > it->second.tuples) {
      it->second = theirs;
    }
  }
}

void StoreStats::Scale(double factor) {
  auto scale = [factor](size_t n) {
    return static_cast<size_t>(static_cast<double>(n) * factor);
  };
  for (auto it = relations.begin(); it != relations.end();) {
    RelationStats& rs = it->second;
    rs.tuples = scale(rs.tuples);
    if (rs.tuples == 0) {
      it = relations.erase(it);
      continue;
    }
    for (ColumnStats& c : rs.columns) {
      for (FamilyStats* f : {&c.whole, &c.first, &c.last}) {
        f->buckets = scale(f->buckets);
        f->entries = scale(f->entries);
        f->max_bucket = scale(f->max_bucket);
      }
    }
    ++it;
  }
}

double StatsDrift(const StoreStats& before, const StoreStats& after) {
  double drift = 0.0;
  auto relative = [](size_t a, size_t b) {
    size_t hi = std::max(a, b);
    if (hi == 0) return 0.0;
    size_t lo = std::min(a, b);
    return static_cast<double>(hi - lo) / static_cast<double>(hi);
  };
  for (const auto& [rel, rs] : before.relations) {
    auto it = after.relations.find(rel);
    size_t theirs = it == after.relations.end() ? 0 : it->second.tuples;
    drift = std::max(drift, relative(rs.tuples, theirs));
  }
  for (const auto& [rel, rs] : after.relations) {
    if (before.relations.count(rel) == 0) {
      drift = std::max(drift, relative(0, rs.tuples));
    }
  }
  return drift;
}

void StatsAccumulator::Record(const StoreStats& s) {
  std::lock_guard<std::mutex> lock(mu_);
  total_.ObserveMax(s);
}

StoreStats StatsAccumulator::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void StatsAccumulator::Age(double factor) {
  std::lock_guard<std::mutex> lock(mu_);
  total_.Scale(factor);
}

void StatsAccumulator::NoteEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pending_epochs_;
}

void StatsAccumulator::AgeOnRecompute(double factor) {
  std::lock_guard<std::mutex> lock(mu_);
  for (; pending_epochs_ > 0; --pending_epochs_) {
    total_.Scale(factor);
  }
}

size_t StatsAccumulator::PendingEpochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_epochs_;
}

}  // namespace seqdl
