#include "src/engine/eval.h"

#include <cassert>
#include <map>
#include <set>
#include <vector>

#include "src/analysis/safety.h"
#include "src/engine/match.h"
#include "src/syntax/printer.h"

namespace seqdl {

namespace {

// One scheduled step of a rule body.
struct Step {
  enum class Kind { kScan, kEq, kNegPred, kNegEq };
  Kind kind;
  size_t lit_idx;
  bool use_delta = false;  // kScan only; set per evaluation pass
};

// A rule with a precomputed evaluation order: positive predicate scans,
// then positive equations in a safety-respecting order, then negated
// literals (whose variables are all bound by then).
struct PlannedRule {
  const Rule* rule;
  std::vector<Step> steps;
  // Indices into `steps` of scans over same-stratum IDB relations.
  std::vector<size_t> recursive_scan_steps;
};

Result<PlannedRule> PlanRule(const Universe& u, const Rule& r,
                             bool reorder_scans) {
  PlannedRule plan;
  plan.rule = &r;
  std::set<VarId> bound;

  // Positive predicate scans. With reordering, greedily pick the scan
  // sharing the most variables with the already-bound set (a classic join
  // ordering heuristic that turns cartesian products into index-free
  // joins); without, keep body order.
  std::vector<size_t> scans;
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (l.is_predicate() && !l.negated) scans.push_back(i);
  }
  while (!scans.empty()) {
    size_t pick = 0;
    if (reorder_scans) {
      int best_shared = -1;
      for (size_t k = 0; k < scans.size(); ++k) {
        std::vector<VarId> vars;
        CollectVars(r.body[scans[k]], &vars);
        int shared = 0;
        for (VarId v : vars) shared += bound.count(v) ? 1 : 0;
        if (shared > best_shared) {
          best_shared = shared;
          pick = k;
        }
      }
    }
    size_t lit = scans[pick];
    scans.erase(scans.begin() + static_cast<ptrdiff_t>(pick));
    plan.steps.push_back({Step::Kind::kScan, lit, false});
    std::vector<VarId> vars;
    CollectVars(r.body[lit], &vars);
    bound.insert(vars.begin(), vars.end());
  }

  // Positive equations: schedule any whose one side is fully bound.
  std::vector<size_t> pending;
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (l.is_equation() && !l.negated) pending.push_back(i);
  }
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t k = 0; k < pending.size(); ++k) {
      const Literal& l = r.body[pending[k]];
      std::set<VarId> lhs = VarSet(l.lhs), rhs = VarSet(l.rhs);
      auto all_bound = [&bound](const std::set<VarId>& vs) {
        for (VarId v : vs) {
          if (!bound.count(v)) return false;
        }
        return true;
      };
      if (all_bound(lhs) || all_bound(rhs)) {
        plan.steps.push_back({Step::Kind::kEq, pending[k], false});
        bound.insert(lhs.begin(), lhs.end());
        bound.insert(rhs.begin(), rhs.end());
        pending.erase(pending.begin() + static_cast<ptrdiff_t>(k));
        progressed = true;
        break;
      }
    }
    if (!progressed) {
      return Status::InvalidArgument("rule is not safe (equations cannot be "
                                     "ordered): " +
                                     FormatRule(u, r));
    }
  }

  // Negated literals last; all their variables must be bound.
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (!l.negated) continue;
    std::vector<VarId> vars;
    CollectVars(l, &vars);
    for (VarId v : vars) {
      if (!bound.count(v)) {
        return Status::InvalidArgument(
            "rule is not safe (negated literal with unbound variable): " +
            FormatRule(u, r));
      }
    }
    plan.steps.push_back(
        {l.is_predicate() ? Step::Kind::kNegPred : Step::Kind::kNegEq, i,
         false});
  }

  // Head variables must be bound.
  std::vector<VarId> head_vars;
  for (const PathExpr& e : r.head.args) CollectVars(e, &head_vars);
  for (VarId v : head_vars) {
    if (!bound.count(v)) {
      return Status::InvalidArgument(
          "rule is not safe (head variable unbound): " + FormatRule(u, r));
    }
  }
  return plan;
}

class Evaluator {
 public:
  Evaluator(Universe& u, const EvalOptions& opts, EvalStats* stats)
      : u_(u), opts_(opts), stats_(stats) {}

  Result<Instance> Run(const Program& p, const Instance& input) {
    if (opts_.validate) {
      SEQDL_RETURN_IF_ERROR(ValidateProgram(u_, p));
    }
    instance_ = input;
    for (const Stratum& s : p.strata) {
      SEQDL_RETURN_IF_ERROR(EvalStratum(s));
    }
    return std::move(instance_);
  }

 private:
  Status EvalStratum(const Stratum& s) {
    std::set<RelId> stratum_idb;
    for (const Rule& r : s.rules) stratum_idb.insert(r.head.rel);

    std::vector<PlannedRule> plans;
    for (const Rule& r : s.rules) {
      SEQDL_ASSIGN_OR_RETURN(PlannedRule plan,
                             PlanRule(u_, r, opts_.reorder_scans));
      for (size_t i = 0; i < plan.steps.size(); ++i) {
        const Step& st = plan.steps[i];
        if (st.kind == Step::Kind::kScan &&
            stratum_idb.count(r.body[st.lit_idx].pred.rel)) {
          plan.recursive_scan_steps.push_back(i);
        }
      }
      plans.push_back(std::move(plan));
    }

    if (!opts_.seminaive) return EvalStratumNaive(plans);

    // Round 0: all rules, full scans.
    std::map<RelId, TupleSet> delta;
    pending_.clear();
    for (PlannedRule& plan : plans) {
      SEQDL_RETURN_IF_ERROR(ApplyRule(plan, nullptr));
    }
    SEQDL_RETURN_IF_ERROR(MergePending(&delta));

    // Delta rounds.
    while (!delta.empty()) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      for (PlannedRule& plan : plans) {
        for (size_t step_idx : plan.recursive_scan_steps) {
          // Evaluate with this occurrence restricted to the delta.
          plan.steps[step_idx].use_delta = true;
          SEQDL_RETURN_IF_ERROR(ApplyRule(plan, &delta));
          plan.steps[step_idx].use_delta = false;
        }
      }
      std::map<RelId, TupleSet> new_delta;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_delta));
      delta = std::move(new_delta);
    }
    return Status::OK();
  }

  Status EvalStratumNaive(std::vector<PlannedRule>& plans) {
    while (true) {
      SEQDL_RETURN_IF_ERROR(BumpRound());
      pending_.clear();
      for (PlannedRule& plan : plans) {
        SEQDL_RETURN_IF_ERROR(ApplyRule(plan, nullptr));
      }
      std::map<RelId, TupleSet> new_facts;
      SEQDL_RETURN_IF_ERROR(MergePending(&new_facts));
      if (new_facts.empty()) return Status::OK();
    }
  }

  Status BumpRound() {
    if (stats_) ++stats_->rounds;
    if (++rounds_ > opts_.max_iterations) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_iterations = " +
          std::to_string(opts_.max_iterations) +
          " (the program may not terminate)");
    }
    return Status::OK();
  }

  // Runs one rule; derived facts go to pending_.
  Status ApplyRule(const PlannedRule& plan,
                   const std::map<RelId, TupleSet>* delta) {
    Valuation v;
    status_ = Status::OK();
    ExecuteStep(plan, 0, v, delta);
    return status_;
  }

  // Returns false to abort enumeration (on error).
  bool ExecuteStep(const PlannedRule& plan, size_t step_idx, Valuation& v,
                   const std::map<RelId, TupleSet>* delta) {
    if (!status_.ok()) return false;
    if (step_idx == plan.steps.size()) return DeriveHead(plan, v);

    const Step& step = plan.steps[step_idx];
    const Literal& lit = plan.rule->body[step.lit_idx];
    auto next = [&](Valuation& v2) {
      return ExecuteStep(plan, step_idx + 1, v2, delta);
    };

    switch (step.kind) {
      case Step::Kind::kScan: {
        const TupleSet* tuples;
        if (step.use_delta) {
          assert(delta != nullptr);
          auto it = delta->find(lit.pred.rel);
          if (it == delta->end()) return true;
          tuples = &it->second;
        } else {
          tuples = &instance_.Tuples(lit.pred.rel);
        }
        for (const Tuple& t : *tuples) {
          if (!MatchArgs(u_, lit.pred.args, t, v, next)) return false;
        }
        return true;
      }
      case Step::Kind::kEq: {
        bool lhs_bound = AllVarsBound(lit.lhs, v);
        bool rhs_bound = AllVarsBound(lit.rhs, v);
        if (lhs_bound && rhs_bound) {
          PathId a, b;
          if (!EvalTo(lit.lhs, v, &a) || !EvalTo(lit.rhs, v, &b)) return false;
          if (a != b) return true;
          return next(v);
        }
        if (lhs_bound) {
          PathId a;
          if (!EvalTo(lit.lhs, v, &a)) return false;
          return MatchExpr(u_, lit.rhs, a, v, next);
        }
        if (rhs_bound) {
          PathId b;
          if (!EvalTo(lit.rhs, v, &b)) return false;
          return MatchExpr(u_, lit.lhs, b, v, next);
        }
        status_ = Status::Internal("equation scheduled before being ground");
        return false;
      }
      case Step::Kind::kNegPred: {
        Tuple t;
        t.reserve(lit.pred.args.size());
        for (const PathExpr& e : lit.pred.args) {
          PathId p;
          if (!EvalTo(e, v, &p)) return false;
          t.push_back(p);
        }
        // The negated relation is complete here (stratified negation): it is
        // either EDB or defined in an earlier stratum, so the instance holds
        // all of its facts.
        if (instance_.Contains(lit.pred.rel, t)) return true;
        return next(v);
      }
      case Step::Kind::kNegEq: {
        PathId a, b;
        if (!EvalTo(lit.lhs, v, &a) || !EvalTo(lit.rhs, v, &b)) return false;
        if (a == b) return true;
        return next(v);
      }
    }
    return true;
  }

  bool EvalTo(const PathExpr& e, const Valuation& v, PathId* out) {
    Result<PathId> r = EvalExpr(u_, e, v);
    if (!r.ok()) {
      status_ = r.status();
      return false;
    }
    *out = *r;
    return true;
  }

  bool DeriveHead(const PlannedRule& plan, const Valuation& v) {
    if (stats_) ++stats_->rule_firings;
    Tuple t;
    t.reserve(plan.rule->head.args.size());
    for (const PathExpr& e : plan.rule->head.args) {
      PathId p;
      if (!EvalTo(e, v, &p)) return false;
      if (u_.PathLength(p) > opts_.max_path_length) {
        status_ = Status::ResourceExhausted(
            "derived path longer than max_path_length = " +
            std::to_string(opts_.max_path_length) +
            " (the program may not terminate)");
        return false;
      }
      t.push_back(p);
    }
    RelId rel = plan.rule->head.rel;
    if (instance_.Contains(rel, t)) return true;
    if (pending_[rel].insert(std::move(t)).second) {
      ++derived_;
      if (stats_) ++stats_->derived_facts;
      if (derived_ > opts_.max_facts) {
        status_ = Status::ResourceExhausted(
            "evaluation derived more than max_facts = " +
            std::to_string(opts_.max_facts) +
            " facts (the program may not terminate)");
        return false;
      }
    }
    return true;
  }

  // Moves pending facts into the instance; facts that were genuinely new
  // are reported in `*fresh`.
  Status MergePending(std::map<RelId, TupleSet>* fresh) {
    fresh->clear();
    for (auto& [rel, tuples] : pending_) {
      for (const Tuple& t : tuples) {
        if (instance_.Add(rel, t)) (*fresh)[rel].insert(t);
      }
    }
    pending_.clear();
    return Status::OK();
  }

  Universe& u_;
  EvalOptions opts_;
  EvalStats* stats_;
  Instance instance_;
  std::map<RelId, TupleSet> pending_;
  Status status_;
  size_t rounds_ = 0;
  size_t derived_ = 0;
};

}  // namespace

Result<Instance> Eval(Universe& u, const Program& p, const Instance& input,
                      const EvalOptions& opts, EvalStats* stats) {
  Evaluator e(u, opts, stats);
  return e.Run(p, input);
}

Result<Instance> EvalQuery(Universe& u, const Program& p,
                           const Instance& input, RelId output,
                           const EvalOptions& opts) {
  SEQDL_ASSIGN_OR_RETURN(Instance full, Eval(u, p, input, opts));
  return full.Project({output});
}

}  // namespace seqdl
