#include "src/engine/eval.h"

namespace seqdl {

namespace {

CompileOptions ToCompileOptions(const EvalOptions& opts) {
  CompileOptions c;
  c.validate = opts.validate;
  c.reorder_scans = opts.reorder_scans;
  return c;
}

RunOptions ToRunOptions(const EvalOptions& opts) {
  RunOptions r;
  r.max_facts = opts.max_facts;
  r.max_iterations = opts.max_iterations;
  r.max_path_length = opts.max_path_length;
  r.seminaive = opts.seminaive;
  r.use_index = opts.use_index;
  r.delta_index_threshold = opts.delta_index_threshold;
  return r;
}

}  // namespace

Result<Instance> Eval(Universe& u, const Program& p, const Instance& input,
                      const EvalOptions& opts, EvalStats* stats) {
  SEQDL_ASSIGN_OR_RETURN(
      PreparedProgram prog,
      Engine::CompileBorrowed(u, p, ToCompileOptions(opts)));
  return prog.Run(input, ToRunOptions(opts), stats);
}

Result<Instance> EvalQuery(Universe& u, const Program& p,
                           const Instance& input, RelId output,
                           const EvalOptions& opts) {
  SEQDL_ASSIGN_OR_RETURN(Instance full, Eval(u, p, input, opts));
  return full.Project({output});
}

}  // namespace seqdl
