#include "src/engine/plan.h"

#include <set>

#include "src/syntax/printer.h"

namespace seqdl {

namespace {

bool ItemIsGround(const ExprItem& item, const std::set<VarId>& bound) {
  switch (item.kind) {
    case ExprItem::Kind::kConst:
      return true;
    case ExprItem::Kind::kAtomVar:
    case ExprItem::Kind::kPathVar:
      return bound.count(item.var) > 0;
    case ExprItem::Kind::kPack: {
      for (VarId v : VarSet(*item.pack)) {
        if (!bound.count(v)) return false;
      }
      return true;
    }
  }
  return false;
}

/// The access path chosen for one scan, before it is written into a
/// PlanStep. Family ranks double as deterministic tie-break order: an
/// exact whole-value probe beats the overapproximating first/last-value
/// probes beats a full scan when estimates are equal.
struct AccessChoice {
  enum Family : uint8_t { kWhole = 0, kFirst = 1, kLast = 2, kFull = 3 };

  Family family = kFull;
  int arg = -1;
  PathExpr key_expr;  // kFirst/kLast: the ground prefix/suffix items.
  double est = 0.0;
  bool from_stats = false;
};

/// Legacy heuristic: the first fully ground argument wins (whole-value
/// probe); failing that, the argument with the longest non-empty leading
/// or trailing run of ground items (first/last-value probe), the longer
/// run winning and prefix winning ties.
AccessChoice ChooseAccessLegacy(const Predicate& pred,
                                const std::set<VarId>& bound) {
  size_t best_prefix_len = 0, best_suffix_len = 0;
  AccessChoice prefix, suffix;
  for (size_t i = 0; i < pred.args.size(); ++i) {
    const PathExpr& arg = pred.args[i];
    size_t ground_items = 0;
    while (ground_items < arg.items.size() &&
           ItemIsGround(arg.items[ground_items], bound)) {
      ++ground_items;
    }
    if (ground_items == arg.items.size()) {
      AccessChoice whole;
      whole.family = AccessChoice::kWhole;
      whole.arg = static_cast<int>(i);
      return whole;
    }
    if (ground_items > best_prefix_len) {
      best_prefix_len = ground_items;
      prefix.family = AccessChoice::kFirst;
      prefix.arg = static_cast<int>(i);
      prefix.key_expr = PathExpr(std::vector<ExprItem>(
          arg.items.begin(),
          arg.items.begin() + static_cast<ptrdiff_t>(ground_items)));
    }
    size_t trailing = 0;
    while (trailing < arg.items.size() &&
           ItemIsGround(arg.items[arg.items.size() - 1 - trailing], bound)) {
      ++trailing;
    }
    if (trailing > best_suffix_len) {
      best_suffix_len = trailing;
      suffix.family = AccessChoice::kLast;
      suffix.arg = static_cast<int>(i);
      suffix.key_expr = PathExpr(std::vector<ExprItem>(
          arg.items.end() - static_cast<ptrdiff_t>(trailing),
          arg.items.end()));
    }
  }
  if (best_prefix_len == 0 && best_suffix_len == 0) return AccessChoice();
  return best_prefix_len >= best_suffix_len ? prefix : suffix;
}

/// Selectivity-aware model: rank every candidate access path — a
/// whole-value probe per fully ground argument, a first/last-value probe
/// per argument with a non-empty ground prefix/suffix run, and the full
/// scan — by its measured expected bucket size, smallest first. Ties go to
/// the exacter family, then the lower argument position, keeping plans
/// deterministic and pinned by tests/planner_test.cc.
AccessChoice ChooseAccessStats(const Predicate& pred,
                               const std::set<VarId>& bound,
                               const StoreStats& stats) {
  bool known = stats.Knows(pred.rel);
  AccessChoice best;
  best.family = AccessChoice::kFull;
  best.est = stats.EstimateScan(pred.rel);
  best.from_stats = known;
  auto consider = [&](AccessChoice cand) {
    if (cand.est < best.est ||
        (cand.est == best.est &&
         (cand.family < best.family ||
          (cand.family == best.family && cand.arg < best.arg)))) {
      best = std::move(cand);
    }
  };
  for (size_t i = 0; i < pred.args.size(); ++i) {
    const PathExpr& arg = pred.args[i];
    size_t leading = 0;
    while (leading < arg.items.size() &&
           ItemIsGround(arg.items[leading], bound)) {
      ++leading;
    }
    uint32_t col = static_cast<uint32_t>(i);
    if (leading == arg.items.size()) {
      AccessChoice whole;
      whole.family = AccessChoice::kWhole;
      whole.arg = static_cast<int>(i);
      whole.est = stats.EstimateWhole(pred.rel, col);
      whole.from_stats = known;
      consider(std::move(whole));
      continue;
    }
    if (leading > 0) {
      AccessChoice first;
      first.family = AccessChoice::kFirst;
      first.arg = static_cast<int>(i);
      first.key_expr = PathExpr(std::vector<ExprItem>(
          arg.items.begin(),
          arg.items.begin() + static_cast<ptrdiff_t>(leading)));
      first.est = stats.EstimateFirst(pred.rel, col);
      first.from_stats = known;
      consider(std::move(first));
    }
    size_t trailing = 0;
    while (trailing < arg.items.size() &&
           ItemIsGround(arg.items[arg.items.size() - 1 - trailing], bound)) {
      ++trailing;
    }
    if (trailing > 0) {
      AccessChoice last;
      last.family = AccessChoice::kLast;
      last.arg = static_cast<int>(i);
      last.key_expr = PathExpr(std::vector<ExprItem>(
          arg.items.end() - static_cast<ptrdiff_t>(trailing),
          arg.items.end()));
      last.est = stats.EstimateLast(pred.rel, col);
      last.from_stats = known;
      consider(std::move(last));
    }
  }
  return best;
}

AccessChoice ChooseAccess(const Predicate& pred, const std::set<VarId>& bound,
                          const StoreStats* stats) {
  return stats == nullptr ? ChooseAccessLegacy(pred, bound)
                          : ChooseAccessStats(pred, bound, *stats);
}

/// Writes the chosen access path into the step's key fields.
void ApplyAccess(AccessChoice choice, bool have_stats, PlanStep* step) {
  switch (choice.family) {
    case AccessChoice::kWhole:
      step->index_arg = choice.arg;
      break;
    case AccessChoice::kFirst:
      step->prefix_arg = choice.arg;
      step->prefix_expr = std::move(choice.key_expr);
      break;
    case AccessChoice::kLast:
      step->suffix_arg = choice.arg;
      step->suffix_expr = std::move(choice.key_expr);
      break;
    case AccessChoice::kFull:
      break;
  }
  if (have_stats) {
    step->est_cost = choice.est;
    step->stats_chosen = choice.from_stats;
  }
}

}  // namespace

Result<RulePlan> PlanRule(const Universe& u, const Rule& r,
                          const PlannerOptions& opts) {
  RulePlan plan;
  plan.rule = &r;
  std::set<VarId> bound;
  if (opts.head_bound) {
    std::vector<VarId> head_vars;
    for (const PathExpr& e : r.head.args) CollectVars(e, &head_vars);
    bound.insert(head_vars.begin(), head_vars.end());
  }

  // Positive predicate scans. With reordering, greedily pick the cheapest
  // next scan: by measured expected bucket size of its best access path
  // when statistics are present, else by most variables shared with the
  // already-bound set (the classic join-ordering heuristic that turns
  // cartesian products into keyed joins). Without reordering, keep body
  // order.
  std::vector<size_t> scans;
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (l.is_predicate() && !l.negated) scans.push_back(i);
  }
  bool forced_pending = opts.first_lit >= 0;
  while (!scans.empty()) {
    size_t pick = 0;
    // Stats-mode ordering evaluates each candidate's access choice
    // anyway; the winner's is kept and reused for its plan step.
    AccessChoice picked;
    bool have_picked = false;
    if (forced_pending) {
      forced_pending = false;
      bool found = false;
      for (size_t k = 0; k < scans.size(); ++k) {
        if (scans[k] == static_cast<size_t>(opts.first_lit)) {
          pick = k;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "first_lit does not name a positive predicate literal: " +
            FormatRule(u, r));
      }
    } else if (opts.reorder_scans && scans.size() > 1) {
      auto shared_vars = [&](size_t lit) {
        std::vector<VarId> vars;
        CollectVars(r.body[lit], &vars);
        int shared = 0;
        for (VarId v : vars) shared += bound.count(v) ? 1 : 0;
        return shared;
      };
      if (opts.stats == nullptr) {
        int best_shared = -1;
        for (size_t k = 0; k < scans.size(); ++k) {
          int shared = shared_vars(scans[k]);
          if (shared > best_shared) {
            best_shared = shared;
            pick = k;
          }
        }
      } else {
        // Cheapest estimated access first; ties broken by most shared
        // bound variables, then body order (strict improvement required,
        // so the first candidate wins all-equal ties).
        int best_shared = -1;
        for (size_t k = 0; k < scans.size(); ++k) {
          AccessChoice cand =
              ChooseAccessStats(r.body[scans[k]].pred, bound, *opts.stats);
          int shared = shared_vars(scans[k]);
          if (best_shared < 0 || cand.est < picked.est ||
              (cand.est == picked.est && shared > best_shared)) {
            best_shared = shared;
            pick = k;
            picked = std::move(cand);
            have_picked = true;
          }
        }
      }
    }
    size_t lit = scans[pick];
    scans.erase(scans.begin() + static_cast<ptrdiff_t>(pick));
    PlanStep step;
    step.kind = PlanStep::Kind::kScan;
    step.lit_idx = lit;
    if (!have_picked) {
      picked = ChooseAccess(r.body[lit].pred, bound, opts.stats);
    }
    ApplyAccess(std::move(picked), opts.stats != nullptr, &step);
    plan.steps.push_back(std::move(step));
    std::vector<VarId> vars;
    CollectVars(r.body[lit], &vars);
    bound.insert(vars.begin(), vars.end());
  }

  // Positive equations: schedule any whose one side is fully bound.
  std::vector<size_t> pending;
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (l.is_equation() && !l.negated) pending.push_back(i);
  }
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t k = 0; k < pending.size(); ++k) {
      const Literal& l = r.body[pending[k]];
      std::set<VarId> lhs = VarSet(l.lhs), rhs = VarSet(l.rhs);
      auto all_bound = [&bound](const std::set<VarId>& vs) {
        for (VarId v : vs) {
          if (!bound.count(v)) return false;
        }
        return true;
      };
      if (all_bound(lhs) || all_bound(rhs)) {
        PlanStep step;
        step.kind = PlanStep::Kind::kEq;
        step.lit_idx = pending[k];
        plan.steps.push_back(std::move(step));
        bound.insert(lhs.begin(), lhs.end());
        bound.insert(rhs.begin(), rhs.end());
        pending.erase(pending.begin() + static_cast<ptrdiff_t>(k));
        progressed = true;
        break;
      }
    }
    if (!progressed) {
      return Status::InvalidArgument("rule is not safe (equations cannot be "
                                     "ordered): " +
                                     FormatRule(u, r));
    }
  }

  // Negated literals last; all their variables must be bound.
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (!l.negated) continue;
    std::vector<VarId> vars;
    CollectVars(l, &vars);
    for (VarId v : vars) {
      if (!bound.count(v)) {
        return Status::InvalidArgument(
            "rule is not safe (negated literal with unbound variable): " +
            FormatRule(u, r));
      }
    }
    PlanStep step;
    step.kind =
        l.is_predicate() ? PlanStep::Kind::kNegPred : PlanStep::Kind::kNegEq;
    step.lit_idx = i;
    plan.steps.push_back(std::move(step));
  }

  // Head variables must be bound.
  std::vector<VarId> head_vars;
  for (const PathExpr& e : r.head.args) CollectVars(e, &head_vars);
  for (VarId v : head_vars) {
    if (!bound.count(v)) {
      return Status::InvalidArgument(
          "rule is not safe (head variable unbound): " + FormatRule(u, r));
    }
  }
  return plan;
}

Result<RulePlan> PlanRule(const Universe& u, const Rule& r,
                          bool reorder_scans) {
  PlannerOptions opts;
  opts.reorder_scans = reorder_scans;
  return PlanRule(u, r, opts);
}

}  // namespace seqdl
