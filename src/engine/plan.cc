#include "src/engine/plan.h"

#include <set>

#include "src/syntax/printer.h"

namespace seqdl {

namespace {

bool ItemIsGround(const ExprItem& item, const std::set<VarId>& bound) {
  switch (item.kind) {
    case ExprItem::Kind::kConst:
      return true;
    case ExprItem::Kind::kAtomVar:
    case ExprItem::Kind::kPathVar:
      return bound.count(item.var) > 0;
    case ExprItem::Kind::kPack: {
      for (VarId v : VarSet(*item.pack)) {
        if (!bound.count(v)) return false;
      }
      return true;
    }
  }
  return false;
}

// Picks the index strategy for a scan of `pred` given the variables bound
// before it runs: a fully ground argument position (whole-value probe), or
// failing that, the argument with the longest non-empty leading run of
// ground items (first-value probe on the evaluated prefix) or trailing run
// of ground items (last-value probe on the evaluated suffix, the
// suffix-ground shape `$x ++ a`) — whichever run is longer, prefix winning
// ties.
void PickIndexArgs(const Predicate& pred, const std::set<VarId>& bound,
                   PlanStep* step) {
  size_t best_prefix_len = 0, best_suffix_len = 0;
  int prefix_arg = -1, suffix_arg = -1;
  PathExpr prefix_expr, suffix_expr;
  for (size_t i = 0; i < pred.args.size(); ++i) {
    const PathExpr& arg = pred.args[i];
    size_t ground_items = 0;
    while (ground_items < arg.items.size() &&
           ItemIsGround(arg.items[ground_items], bound)) {
      ++ground_items;
    }
    if (ground_items == arg.items.size()) {
      step->index_arg = static_cast<int>(i);
      step->prefix_arg = -1;
      step->prefix_expr = PathExpr();
      step->suffix_arg = -1;
      step->suffix_expr = PathExpr();
      return;
    }
    if (ground_items > best_prefix_len) {
      best_prefix_len = ground_items;
      prefix_arg = static_cast<int>(i);
      prefix_expr = PathExpr(std::vector<ExprItem>(
          arg.items.begin(),
          arg.items.begin() + static_cast<ptrdiff_t>(ground_items)));
    }
    size_t trailing = 0;
    while (trailing < arg.items.size() &&
           ItemIsGround(arg.items[arg.items.size() - 1 - trailing], bound)) {
      ++trailing;
    }
    if (trailing > best_suffix_len) {
      best_suffix_len = trailing;
      suffix_arg = static_cast<int>(i);
      suffix_expr = PathExpr(std::vector<ExprItem>(
          arg.items.end() - static_cast<ptrdiff_t>(trailing),
          arg.items.end()));
    }
  }
  if (best_prefix_len >= best_suffix_len) {
    step->prefix_arg = prefix_arg;
    step->prefix_expr = std::move(prefix_expr);
  } else {
    step->suffix_arg = suffix_arg;
    step->suffix_expr = std::move(suffix_expr);
  }
}

}  // namespace

Result<RulePlan> PlanRule(const Universe& u, const Rule& r,
                          bool reorder_scans) {
  RulePlan plan;
  plan.rule = &r;
  std::set<VarId> bound;

  // Positive predicate scans. With reordering, greedily pick the scan
  // sharing the most variables with the already-bound set (a classic join
  // ordering heuristic that turns cartesian products into keyed joins);
  // without, keep body order.
  std::vector<size_t> scans;
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (l.is_predicate() && !l.negated) scans.push_back(i);
  }
  while (!scans.empty()) {
    size_t pick = 0;
    if (reorder_scans) {
      int best_shared = -1;
      for (size_t k = 0; k < scans.size(); ++k) {
        std::vector<VarId> vars;
        CollectVars(r.body[scans[k]], &vars);
        int shared = 0;
        for (VarId v : vars) shared += bound.count(v) ? 1 : 0;
        if (shared > best_shared) {
          best_shared = shared;
          pick = k;
        }
      }
    }
    size_t lit = scans[pick];
    scans.erase(scans.begin() + static_cast<ptrdiff_t>(pick));
    PlanStep step;
    step.kind = PlanStep::Kind::kScan;
    step.lit_idx = lit;
    PickIndexArgs(r.body[lit].pred, bound, &step);
    plan.steps.push_back(std::move(step));
    std::vector<VarId> vars;
    CollectVars(r.body[lit], &vars);
    bound.insert(vars.begin(), vars.end());
  }

  // Positive equations: schedule any whose one side is fully bound.
  std::vector<size_t> pending;
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (l.is_equation() && !l.negated) pending.push_back(i);
  }
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t k = 0; k < pending.size(); ++k) {
      const Literal& l = r.body[pending[k]];
      std::set<VarId> lhs = VarSet(l.lhs), rhs = VarSet(l.rhs);
      auto all_bound = [&bound](const std::set<VarId>& vs) {
        for (VarId v : vs) {
          if (!bound.count(v)) return false;
        }
        return true;
      };
      if (all_bound(lhs) || all_bound(rhs)) {
        PlanStep step;
        step.kind = PlanStep::Kind::kEq;
        step.lit_idx = pending[k];
        plan.steps.push_back(std::move(step));
        bound.insert(lhs.begin(), lhs.end());
        bound.insert(rhs.begin(), rhs.end());
        pending.erase(pending.begin() + static_cast<ptrdiff_t>(k));
        progressed = true;
        break;
      }
    }
    if (!progressed) {
      return Status::InvalidArgument("rule is not safe (equations cannot be "
                                     "ordered): " +
                                     FormatRule(u, r));
    }
  }

  // Negated literals last; all their variables must be bound.
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (!l.negated) continue;
    std::vector<VarId> vars;
    CollectVars(l, &vars);
    for (VarId v : vars) {
      if (!bound.count(v)) {
        return Status::InvalidArgument(
            "rule is not safe (negated literal with unbound variable): " +
            FormatRule(u, r));
      }
    }
    PlanStep step;
    step.kind =
        l.is_predicate() ? PlanStep::Kind::kNegPred : PlanStep::Kind::kNegEq;
    step.lit_idx = i;
    plan.steps.push_back(std::move(step));
  }

  // Head variables must be bound.
  std::vector<VarId> head_vars;
  for (const PathExpr& e : r.head.args) CollectVars(e, &head_vars);
  for (VarId v : head_vars) {
    if (!bound.count(v)) {
      return Status::InvalidArgument(
          "rule is not safe (head variable unbound): " + FormatRule(u, r));
    }
  }
  return plan;
}

}  // namespace seqdl
