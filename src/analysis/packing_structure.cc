#include "src/analysis/packing_structure.h"

namespace seqdl {

size_t PackingStructure::NumStars() const {
  size_t n = children.size() + 1;  // top-level stars around/between packs
  for (const PackingStructure& c : children) n += c.NumStars();
  return n;
}

std::string PackingStructure::ToString() const {
  std::string out = "*";
  for (const PackingStructure& c : children) {
    out += "·<" + c.ToString() + ">·*";
  }
  return out;
}

PackingStructure Delta(const PathExpr& e) {
  PackingStructure ps;
  for (const ExprItem& it : e.items) {
    if (it.kind == ExprItem::Kind::kPack) {
      ps.children.push_back(Delta(*it.pack));
    }
    // Non-pack items contribute only to the surrounding stars, which are
    // implicit in the representation.
  }
  return ps;
}

namespace {
void ComponentsInto(const PathExpr& e, std::vector<PathExpr>* out) {
  // Preorder: segment before first pack, then recursively the pack's
  // components, then the next segment, etc., ending with the final segment.
  PathExpr segment;
  for (const ExprItem& it : e.items) {
    if (it.kind == ExprItem::Kind::kPack) {
      out->push_back(std::move(segment));
      segment = PathExpr();
      ComponentsInto(*it.pack, out);
    } else {
      segment.items.push_back(it);
    }
  }
  out->push_back(std::move(segment));
}

Result<PathExpr> FromComponentsImpl(const PackingStructure& ps,
                                    const std::vector<PathExpr>& components,
                                    size_t* idx) {
  PathExpr out;
  auto take_segment = [&]() -> Status {
    if (*idx >= components.size()) {
      return Status::InvalidArgument(
          "FromComponents: not enough components for structure");
    }
    const PathExpr& seg = components[(*idx)++];
    if (seg.HasPacking()) {
      return Status::InvalidArgument(
          "FromComponents: component contains packing");
    }
    out.items.insert(out.items.end(), seg.items.begin(), seg.items.end());
    return Status::OK();
  };
  SEQDL_RETURN_IF_ERROR(take_segment());
  for (const PackingStructure& child : ps.children) {
    SEQDL_ASSIGN_OR_RETURN(PathExpr inner,
                           FromComponentsImpl(child, components, idx));
    out.items.push_back(ExprItem::Pack(std::move(inner)));
    SEQDL_RETURN_IF_ERROR(take_segment());
  }
  return out;
}
}  // namespace

std::vector<PathExpr> Components(const PathExpr& e) {
  std::vector<PathExpr> out;
  ComponentsInto(e, &out);
  return out;
}

Result<PathExpr> FromComponents(const PackingStructure& ps,
                                const std::vector<PathExpr>& components) {
  size_t idx = 0;
  SEQDL_ASSIGN_OR_RETURN(PathExpr out,
                         FromComponentsImpl(ps, components, &idx));
  if (idx != components.size()) {
    return Status::InvalidArgument("FromComponents: too many components");
  }
  return out;
}

}  // namespace seqdl
