#include "src/analysis/safety.h"

#include <vector>

#include "src/syntax/printer.h"

namespace seqdl {

std::set<VarId> LimitedVars(const Rule& r) {
  std::set<VarId> limited;
  // Base: variables of positive body predicates.
  for (const Literal& l : r.body) {
    if (l.is_predicate() && !l.negated) {
      std::vector<VarId> vars;
      CollectVars(l, &vars);
      limited.insert(vars.begin(), vars.end());
    }
  }
  // Fixpoint over positive equations.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : r.body) {
      if (!l.is_equation() || l.negated) continue;
      std::set<VarId> lhs = VarSet(l.lhs), rhs = VarSet(l.rhs);
      auto all_limited = [&limited](const std::set<VarId>& side) {
        for (VarId v : side) {
          if (!limited.count(v)) return false;
        }
        return true;
      };
      if (all_limited(lhs)) {
        for (VarId v : rhs) changed |= limited.insert(v).second;
      }
      if (all_limited(rhs)) {
        for (VarId v : lhs) changed |= limited.insert(v).second;
      }
    }
  }
  return limited;
}

bool IsSafeRule(const Rule& r) {
  std::set<VarId> limited = LimitedVars(r);
  std::vector<VarId> all;
  CollectVars(r, &all);
  for (VarId v : all) {
    if (!limited.count(v)) return false;
  }
  return true;
}

Status ValidateProgram(const Universe& u, const Program& p) {
  return ValidateProgram(u, p, nullptr);
}

namespace {

/// Display form of a variable, with its sigil ("@x" / "$x").
std::string FormatVar(const Universe& u, VarId v) {
  return (u.VarKindOf(v) == VarKind::kAtomic ? "@" : "$") + u.VarName(v);
}

/// Appends to `diags` (when non-null) and returns the error, remembering
/// the first one in `*first`.
void Report(DiagnosticList* diags, Status* first, const char* code,
            SourceSpan span, std::string message,
            std::vector<std::string> notes = {}) {
  if (first->ok()) *first = Status::InvalidArgument(message);
  if (diags != nullptr) {
    Diagnostic d = Diagnostic::Error(code, span, std::move(message));
    d.notes = std::move(notes);
    diags->Add(d);
  }
}

}  // namespace

Status ValidateProgram(const Universe& u, const Program& p,
                       DiagnosticList* diags) {
  Status first = Status::OK();
  for (const Rule* r : p.AllRules()) {
    if (IsSafeRule(*r)) continue;
    std::set<VarId> limited = LimitedVars(*r);
    std::vector<VarId> all;
    CollectVars(*r, &all);
    std::string unlimited;
    for (VarId v : all) {
      if (limited.count(v)) continue;
      if (!unlimited.empty()) unlimited += ", ";
      unlimited += FormatVar(u, v);
    }
    Report(diags, &first, "SD010", r->span,
           "unsafe rule: " + FormatRule(u, *r),
           {"variables not limited by a positive body literal: " + unlimited});
    if (diags == nullptr) return first;
  }
  // Heads defined per stratum.
  std::vector<std::set<RelId>> heads_by_stratum(p.strata.size());
  for (size_t i = 0; i < p.strata.size(); ++i) {
    for (const Rule& r : p.strata[i].rules) {
      heads_by_stratum[i].insert(r.head.rel);
    }
  }
  // Stratified negation: a relation negated in stratum i must not be a head
  // in stratum i or later.
  for (size_t i = 0; i < p.strata.size(); ++i) {
    for (const Rule& r : p.strata[i].rules) {
      for (const Literal& l : r.body) {
        if (!l.is_predicate() || !l.negated) continue;
        for (size_t j = i; j < p.strata.size(); ++j) {
          if (heads_by_stratum[j].count(l.pred.rel)) {
            Report(diags, &first, "SD011", r.span,
                   "negation not stratified: relation " +
                       u.RelName(l.pred.rel) + " is negated in stratum " +
                       std::to_string(i) + " but defined in stratum " +
                       std::to_string(j));
            if (diags == nullptr) return first;
          }
        }
      }
    }
  }
  // A relation defined in one stratum must not gain rules in a later one
  // (the sequential semantics of strata would otherwise be ambiguous).
  for (size_t i = 0; i < p.strata.size(); ++i) {
    for (size_t j = i + 1; j < p.strata.size(); ++j) {
      for (RelId rel : heads_by_stratum[i]) {
        if (!heads_by_stratum[j].count(rel)) continue;
        SourceSpan span;
        for (const Rule& r : p.strata[j].rules) {
          if (r.head.rel == rel) {
            span = r.span;
            break;
          }
        }
        Report(diags, &first, "SD012", span,
               "relation " + u.RelName(rel) + " is defined in stratum " +
                   std::to_string(i) + " and again in stratum " +
                   std::to_string(j));
        if (diags == nullptr) return first;
      }
    }
  }
  // A relation used positively or negatively in stratum i and defined in a
  // later stratum j > i would read an incomplete relation; reject.
  for (size_t i = 0; i < p.strata.size(); ++i) {
    for (const Rule& r : p.strata[i].rules) {
      for (const Literal& l : r.body) {
        if (!l.is_predicate()) continue;
        for (size_t j = i + 1; j < p.strata.size(); ++j) {
          if (heads_by_stratum[j].count(l.pred.rel)) {
            Report(diags, &first, "SD013", r.span,
                   "relation " + u.RelName(l.pred.rel) +
                       " is used in stratum " + std::to_string(i) +
                       " before its definition in stratum " +
                       std::to_string(j));
            if (diags == nullptr) return first;
          }
        }
      }
    }
  }
  return first;
}

}  // namespace seqdl
