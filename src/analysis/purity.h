// Purity analysis (paper §4.3.3). A variable of a rule is *pure* if it can
// only take values without packing on flat instances:
//
//   1. it occurs in a positive predicate over a relation known to hold flat
//      paths (a *source variable*); or
//   2. it occurs in one side of a positive equation whose other side has
//      only pure variables and no packing.
//
// Positive equations are classified as pure (only pure variables),
// half-pure (one side all pure, other side has an impure variable), or
// fully impure (impure variables on both sides). In a safe rule, a fully
// impure equation can only occur together with a half-pure one.
#ifndef SEQDL_ANALYSIS_PURITY_H_
#define SEQDL_ANALYSIS_PURITY_H_

#include <map>
#include <set>

#include "src/syntax/ast.h"

namespace seqdl {

enum class EquationPurity { kPure, kHalfPure, kFullyImpure };

struct PurityInfo {
  std::set<VarId> pure_vars;
  /// Classification of each *positive* equation, keyed by body index.
  std::map<size_t, EquationPurity> equation_class;

  bool IsPure(VarId v) const { return pure_vars.count(v) > 0; }
  bool AllVarsPure(const PathExpr& e) const;
  /// True iff every variable of the rule that occurs at all is pure.
  bool RuleAllPure(const Rule& r) const;
};

/// Analyzes `r`, where `flat_rels` are the relations known to hold only
/// flat paths (EDB relations of a flat instance, plus any already-purified
/// intermediate relations).
PurityInfo AnalyzePurity(const Rule& r, const std::set<RelId>& flat_rels);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_PURITY_H_
