// Automatic stratification: partitions a rule set into the minimal sequence
// of strata such that negation is stratified, or reports that none exists
// (a negative cycle through the dependency graph).
#ifndef SEQDL_ANALYSIS_STRATIFY_H_
#define SEQDL_ANALYSIS_STRATIFY_H_

#include <vector>

#include "src/base/status.h"
#include "src/syntax/ast.h"

namespace seqdl {

/// Computes a stratification of `rules`. Rules whose heads have equal
/// stratum number end up in the same stratum; stratum numbers satisfy
///   stratum(H) >= stratum(B)      for positive IDB subgoals B, and
///   stratum(H) >= stratum(B) + 1  for negated IDB subgoals B.
Result<Program> AutoStratify(const std::vector<Rule>& rules);

/// Flattens a program's strata and re-stratifies (canonical form).
Result<Program> Restratify(const Program& p);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_STRATIFY_H_
