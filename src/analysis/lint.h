// Lint passes over validated Sequence Datalog programs: structural
// smells that are legal but usually wrong (duplicate rules, singleton
// variables), rules that provably contribute nothing (never fire, dead
// w.r.t. the requested output), and performance hazards (cross-product
// joins). All findings are warnings — `seqdl check` surfaces them with
// spans and stable SD1xx codes, and the server includes them in compile
// replies so clients see them before a run.
//
//   SD101  duplicate rule: byte-identical to an earlier rule
//   SD102  duplicate body literal within one rule
//   SD103  singleton variable: occurs exactly once in the whole rule
//   SD104  rule can never fire: a positive body predicate reads a
//          relation with no derivable facts and no EDB source, or a
//          ground equation is trivially false
//   SD105  cross-product join: two positive body predicates share no
//          variables (the join is a cartesian product; the note carries
//          measured relation sizes when statistics are available)
//   SD106  dead rule: not backward-reachable from the requested output
//          relation (only with LintOptions::output set)
//   SD107  unused IDB relation: derived but never read by any body and
//          not the requested output
#ifndef SEQDL_ANALYSIS_LINT_H_
#define SEQDL_ANALYSIS_LINT_H_

#include <optional>

#include "src/analysis/diagnostics.h"
#include "src/engine/stats.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct LintOptions {
  /// The query's output relation: enables the dead-rule pass (SD106) and
  /// exempts the output from SD107.
  std::optional<RelId> output;
  /// Measured relation sizes; when set, SD105 notes carry the estimated
  /// cross-product cardinality.
  const StoreStats* stats = nullptr;
};

/// Runs every lint pass over `p` and appends the findings to `diags`.
/// Returns the number of findings. `p` should already be valid
/// (ValidateProgram) — lints assume safe, stratified rules.
size_t LintProgram(const Universe& u, const Program& p,
                   const LintOptions& opts, DiagnosticList* diags);

/// IDB relations (transitively) needed to compute `output`: the backward
/// closure of `output` over the rule dependency graph, including
/// `output` itself.
std::set<RelId> LiveRels(const Program& p, RelId output);

/// Drops every rule whose head is not in LiveRels(p, output) — exactly
/// the rules SD106 flags — and drops strata left empty. Derivations of
/// `output` are unaffected: live rules only read live relations, so the
/// projection of the fixpoint onto `output` is byte-identical (the
/// differential suite asserts this).
Program RemoveDeadRules(const Program& p, RelId output);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_LINT_H_
