// The six language features of the paper (§3) and their detection:
//
//   A  arity        — some predicate of arity > 1
//   E  equations    — some equation in a rule body
//   I  intermediate — at least two different IDB relation names
//   N  negation     — some negated atom
//   P  packing      — some <e> path expression
//   R  recursion    — a cycle in the IDB dependency graph
//
// A set of features is a *fragment*; a program belongs to a fragment iff it
// uses only features from it.
#ifndef SEQDL_ANALYSIS_FEATURES_H_
#define SEQDL_ANALYSIS_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/syntax/ast.h"

namespace seqdl {

enum class Feature : uint8_t {
  kArity = 0,         // A
  kEquations = 1,     // E
  kIntermediate = 2,  // I
  kNegation = 3,      // N
  kPacking = 4,       // P
  kRecursion = 5,     // R
};

inline constexpr int kNumFeatures = 6;

/// Letter of a feature: A, E, I, N, P, R.
char FeatureLetter(Feature f);

/// A fragment: a subset of {A, E, I, N, P, R}, stored as a bitmask.
class FeatureSet {
 public:
  constexpr FeatureSet() : bits_(0) {}
  constexpr explicit FeatureSet(uint8_t bits) : bits_(bits) {}

  static FeatureSet Of(std::initializer_list<Feature> fs) {
    FeatureSet s;
    for (Feature f : fs) s = s.With(f);
    return s;
  }
  /// Parses letters, e.g. "EIN" -> {E, I, N}. Unknown letters are an error.
  static Result<FeatureSet> FromLetters(const std::string& letters);
  static constexpr FeatureSet All() { return FeatureSet(0x3f); }

  bool Contains(Feature f) const {
    return (bits_ & (1u << static_cast<int>(f))) != 0;
  }
  bool SubsetOf(FeatureSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  FeatureSet With(Feature f) const {
    return FeatureSet(bits_ | (1u << static_cast<int>(f)));
  }
  FeatureSet Without(Feature f) const {
    return FeatureSet(bits_ & ~(1u << static_cast<int>(f)));
  }
  FeatureSet Union(FeatureSet other) const {
    return FeatureSet(bits_ | other.bits_);
  }
  FeatureSet Intersect(FeatureSet other) const {
    return FeatureSet(bits_ & other.bits_);
  }
  bool DisjointFrom(FeatureSet other) const {
    return (bits_ & other.bits_) == 0;
  }
  bool empty() const { return bits_ == 0; }
  uint8_t bits() const { return bits_; }

  /// "{E,I,N}" (letters in A,E,I,N,P,R order), "{}" for the empty set.
  std::string ToString() const;

  friend bool operator==(FeatureSet a, FeatureSet b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(FeatureSet a, FeatureSet b) { return !(a == b); }
  friend bool operator<(FeatureSet a, FeatureSet b) {
    return a.bits_ < b.bits_;
  }

 private:
  uint8_t bits_;
};

/// Detects exactly which features `p` uses (paper §3).
FeatureSet DetectFeatures(const Program& p);

/// True iff `p` belongs to fragment `f` (uses only features from f).
bool BelongsToFragment(const Program& p, FeatureSet f);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_FEATURES_H_
