#include "src/analysis/diagnostics.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace seqdl {

const char* SeverityToString(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

Diagnostic Diagnostic::Error(std::string code, SourceSpan span,
                             std::string message) {
  return Diagnostic{Severity::kError, std::move(code), span,
                    std::move(message), {}};
}

Diagnostic Diagnostic::Warning(std::string code, SourceSpan span,
                               std::string message) {
  return Diagnostic{Severity::kWarning, std::move(code), span,
                    std::move(message), {}};
}

Diagnostic Diagnostic::Note(std::string code, SourceSpan span,
                            std::string message) {
  return Diagnostic{Severity::kNote, std::move(code), span,
                    std::move(message), {}};
}

std::string Diagnostic::ToString(const std::string& source_name) const {
  std::string out;
  if (!source_name.empty()) out += source_name + ":";
  if (span.valid()) {
    out += std::to_string(span.line) + ":" + std::to_string(span.col) + ":";
  }
  if (!out.empty()) out += " ";
  out += SeverityToString(severity);
  out += ": ";
  out += message;
  if (!code.empty()) {
    out += " [";
    out += code;
    out += "]";
  }
  return out;
}

size_t DiagnosticList::NumErrors() const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t DiagnosticList::NumWarnings() const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

bool DiagnosticList::HasCode(const std::string& code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string DiagnosticList::RenderText(const std::string& source_name) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.ToString(source_name);
    out += "\n";
    for (const std::string& note : d.notes) {
      out += "  note: " + note + "\n";
    }
  }
  return out;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string DiagnosticList::RenderJson() const {
  std::string out = "[";
  for (size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i > 0) out += ",";
    out += "\n  {\"severity\": ";
    AppendJsonString(&out, SeverityToString(d.severity));
    out += ", \"code\": ";
    AppendJsonString(&out, d.code);
    out += ", \"line\": " + std::to_string(d.span.line);
    out += ", \"col\": " + std::to_string(d.span.col);
    out += ", \"endLine\": " + std::to_string(d.span.end_line);
    out += ", \"endCol\": " + std::to_string(d.span.end_col);
    out += ", \"message\": ";
    AppendJsonString(&out, d.message);
    out += ", \"notes\": [";
    for (size_t j = 0; j < d.notes.size(); ++j) {
      if (j > 0) out += ", ";
      AppendJsonString(&out, d.notes[j]);
    }
    out += "]}";
  }
  out += diags_.empty() ? "]" : "\n]";
  return out;
}

Status StatusFromDiagnostics(const DiagnosticList& list) {
  for (const Diagnostic& d : list.all()) {
    if (d.severity != Severity::kError) continue;
    std::string msg;
    if (d.span.valid()) {
      msg += std::to_string(d.span.line) + ":" + std::to_string(d.span.col) +
             ": ";
    }
    msg += d.message;
    if (!d.code.empty()) msg += " [" + d.code + "]";
    return Status::InvalidArgument(std::move(msg));
  }
  return Status::OK();
}

Diagnostic DiagnosticFromStatus(const Status& status) {
  std::string message = status.message();
  std::string code;
  // A trailing " [SDxxx]" is a structured code; lift it out so the
  // rendered line carries it exactly once (ToString re-appends).
  if (message.size() >= 8 && message.back() == ']') {
    size_t open = message.rfind(" [SD");
    if (open != std::string::npos && open + 3 < message.size() - 1) {
      std::string candidate = message.substr(open + 2,
                                             message.size() - open - 3);
      bool digits = candidate.size() > 2;
      for (size_t i = 2; i < candidate.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(candidate[i]))) {
          digits = false;
          break;
        }
      }
      if (digits) {
        code = std::move(candidate);
        message.erase(open);
      }
    }
  }
  return Diagnostic::Error(std::move(code), SourceSpan{}, std::move(message));
}

SourceSpan SpanFromStatusMessage(const std::string& message) {
  // Find the first "L:C:" pair where both sides are digit runs — covers
  // "parse error at 3:7: ..." and "facts.sdl:3:7: ...".
  for (size_t i = 0; i < message.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(message[i]))) continue;
    if (i > 0 && (std::isalnum(static_cast<unsigned char>(message[i - 1])) ||
                  message[i - 1] == '_')) {
      // Mid-identifier digits (e.g. "v12:") are not a line number.
      while (i + 1 < message.size() &&
             std::isdigit(static_cast<unsigned char>(message[i + 1]))) {
        ++i;
      }
      continue;
    }
    size_t j = i;
    while (j < message.size() &&
           std::isdigit(static_cast<unsigned char>(message[j]))) {
      ++j;
    }
    if (j >= message.size() || message[j] != ':' || j + 1 >= message.size() ||
        !std::isdigit(static_cast<unsigned char>(message[j + 1]))) {
      i = j;
      continue;
    }
    size_t k = j + 1;
    while (k < message.size() &&
           std::isdigit(static_cast<unsigned char>(message[k]))) {
      ++k;
    }
    if (k >= message.size() || message[k] != ':') {
      i = k;
      continue;
    }
    int line = std::atoi(message.substr(i, j - i).c_str());
    int col = std::atoi(message.substr(j + 1, k - j - 1).c_str());
    if (line > 0 && col > 0) return SourceSpan::At(line, col);
    i = k;
  }
  return SourceSpan{};
}

}  // namespace seqdl
