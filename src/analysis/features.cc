#include "src/analysis/features.h"

#include "src/analysis/dependency_graph.h"

namespace seqdl {

char FeatureLetter(Feature f) {
  switch (f) {
    case Feature::kArity: return 'A';
    case Feature::kEquations: return 'E';
    case Feature::kIntermediate: return 'I';
    case Feature::kNegation: return 'N';
    case Feature::kPacking: return 'P';
    case Feature::kRecursion: return 'R';
  }
  return '?';
}

Result<FeatureSet> FeatureSet::FromLetters(const std::string& letters) {
  FeatureSet s;
  for (char c : letters) {
    switch (c) {
      case 'A': s = s.With(Feature::kArity); break;
      case 'E': s = s.With(Feature::kEquations); break;
      case 'I': s = s.With(Feature::kIntermediate); break;
      case 'N': s = s.With(Feature::kNegation); break;
      case 'P': s = s.With(Feature::kPacking); break;
      case 'R': s = s.With(Feature::kRecursion); break;
      case ' ': case ',': break;
      default:
        return Status::InvalidArgument(std::string("unknown feature letter '") +
                                       c + "'");
    }
  }
  return s;
}

std::string FeatureSet::ToString() const {
  // Present in the paper's order A, E, I, N, P, R.
  static constexpr Feature kOrder[] = {
      Feature::kArity,    Feature::kEquations, Feature::kIntermediate,
      Feature::kNegation, Feature::kPacking,   Feature::kRecursion};
  std::string out = "{";
  bool first = true;
  for (Feature f : kOrder) {
    if (!Contains(f)) continue;
    if (!first) out += ",";
    out += FeatureLetter(f);
    first = false;
  }
  out += "}";
  return out;
}

FeatureSet DetectFeatures(const Program& p) {
  FeatureSet s;
  for (const Rule* r : p.AllRules()) {
    if (r->head.args.size() > 1) s = s.With(Feature::kArity);
    for (const Literal& l : r->body) {
      if (l.is_equation()) {
        s = s.With(Feature::kEquations);
        if (l.negated) s = s.With(Feature::kNegation);
      } else {
        if (l.pred.args.size() > 1) s = s.With(Feature::kArity);
        if (l.negated) s = s.With(Feature::kNegation);
      }
    }
    if (RuleHasPacking(*r)) s = s.With(Feature::kPacking);
  }
  if (IdbRels(p).size() >= 2) s = s.With(Feature::kIntermediate);
  if (HasCycle(BuildDependencyGraph(p))) s = s.With(Feature::kRecursion);
  return s;
}

bool BelongsToFragment(const Program& p, FeatureSet f) {
  return DetectFeatures(p).SubsetOf(f);
}

}  // namespace seqdl
