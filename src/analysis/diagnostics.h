// Structured diagnostics: every error or warning the analyzer stack
// (lexer, parser, validation, lint, admission control) reports carries a
// stable machine-readable code, a severity, a source span, and optional
// notes — instead of a flat string. One diagnostic renders as the
// familiar compiler line
//
//   prog.sdl:3:7: error: expected ')' [SD002]
//
// and a DiagnosticList renders as text (one line per diagnostic, notes
// indented) or as a JSON document (`seqdl check --json`, machine
// consumers). The wire protocol ships diagnostics in compile replies
// (protocol.h WireDiagnostic mirrors the struct here).
//
// Code catalog (stable; never renumber — docs/analysis.md is the
// reference table):
//
//   SD001  lex error                              error
//   SD002  parse error                            error
//   SD010  unsafe rule (unlimited variables)      error
//   SD011  negation not stratified                error
//   SD012  relation redefined in a later stratum  error
//   SD013  relation used before its definition    error
//   SD101  duplicate rule                         warning
//   SD102  duplicate body literal                 warning
//   SD103  singleton variable                     warning
//   SD104  rule can never fire                    warning
//   SD105  cross-product join (no shared vars)    warning
//   SD106  dead rule w.r.t. the requested output  warning
//   SD107  unused IDB relation                    warning
//   SD200  program is distribution-transparent    note
//   SD201  unkeyed join over partitioned          warning
//          relations
//   SD202  negation over a partitioned relation   warning
//   SD203  derived relation not co-partitioned    warning
//   SD300  admitted under resource budgets        note
//   SD301  recursive rule grows paths in its head warning/error*
//   SD302  packing in a recursive rule            warning/error*
//   SD303  expanding equation in a recursive rule warning/error*
//   SD401  storage I/O failure                    error
//   SD402  WAL corruption                         error
//   SD403  manifest corruption                    error
//   SD404  segment file corruption                error
//   SD405  data-directory state conflict          error
//
//   SD200-203 come from the shard-locality pass (analysis/locality.h):
//   they report where a clustered evaluation happens (shard-local vs
//   gathered at the coordinator), never whether the answer is correct.
//
//   * SD301-303 mark the program *potentially generative* (its fixpoint
//     may not terminate; paper Example 2.3). Under --admission=strict
//     they are errors and the program is rejected; under
//     --admission=budget they stay warnings and the run is capped.
//
//   SD401-405 come from the storage engine (src/storage/): their Status
//   messages end in " [SDxxx]" and DiagnosticFromStatus below recovers
//   the code so disk failures render like analyzer findings.
#ifndef SEQDL_ANALYSIS_DIAGNOSTICS_H_
#define SEQDL_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "src/base/source_span.h"
#include "src/base/status.h"

namespace seqdl {

enum class Severity : uint8_t {
  kError = 0,
  kWarning = 1,
  kNote = 2,
};

/// "error" / "warning" / "note".
const char* SeverityToString(Severity s);

/// One structured finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable code, e.g. "SD002" (see the catalog above).
  std::string code;
  SourceSpan span;
  std::string message;
  /// Secondary locations / explanations, rendered indented under the
  /// main line (no spans of their own — keep them self-contained).
  std::vector<std::string> notes;

  static Diagnostic Error(std::string code, SourceSpan span,
                          std::string message);
  static Diagnostic Warning(std::string code, SourceSpan span,
                            std::string message);
  static Diagnostic Note(std::string code, SourceSpan span,
                         std::string message);

  /// "name:3:7: error: message [SD002]" (the span prefix is dropped when
  /// the span is invalid, the name when empty).
  std::string ToString(const std::string& source_name = "") const;
};

/// An ordered collection of diagnostics plus the usual aggregates.
class DiagnosticList {
 public:
  void Add(Diagnostic d) { diags_.push_back(std::move(d)); }

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }
  const Diagnostic& operator[](size_t i) const { return diags_[i]; }

  size_t NumErrors() const;
  size_t NumWarnings() const;
  bool HasErrors() const { return NumErrors() > 0; }

  /// True iff some diagnostic carries `code`.
  bool HasCode(const std::string& code) const;

  /// One line per diagnostic (notes indented by two spaces), each
  /// prefixed with `source_name` when nonempty. Ends with '\n' unless
  /// empty.
  std::string RenderText(const std::string& source_name = "") const;

  /// The diagnostics as a JSON array (stable field order:
  /// severity, code, line, col, endLine, endCol, message, notes).
  std::string RenderJson() const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Appends a JSON string literal (quotes + escaping) to `out`. Shared by
/// RenderJson and `seqdl check --json`'s top-level document.
void AppendJsonString(std::string* out, const std::string& s);

/// The first error in `list` as a Status (kInvalidArgument, message
/// "line:col: message [code]"), or OK when there are no errors — the
/// bridge from diagnostic-collecting passes to Status-returning APIs.
Status StatusFromDiagnostics(const DiagnosticList& list);

/// Recovers a span from a legacy parser/lexer Status whose message has
/// the shape "... at L:C: ..." or "name:L:C: ..." (AnnotateParseError's
/// output). Returns an invalid span when the message has no location.
SourceSpan SpanFromStatusMessage(const std::string& message);

/// Lifts an error Status into a Diagnostic, recovering a trailing
/// " [SDxxx]" code from the message when present (the storage engine's
/// SD4xx statuses carry one; see the catalog above). The code is
/// stripped from the rendered message — ToString re-appends it. Spanless
/// (storage failures have no source location). `status` must not be OK.
Diagnostic DiagnosticFromStatus(const Status& status);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_DIAGNOSTICS_H_
