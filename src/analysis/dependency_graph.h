// The IDB dependency graph of a program (paper §3, footnote 2): nodes are
// IDB relation names; there is an edge from R1 to R2 if R2 occurs in the
// body of a rule with R1 in its head. A program uses recursion iff this
// graph has a cycle.
#ifndef SEQDL_ANALYSIS_DEPENDENCY_GRAPH_H_
#define SEQDL_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <vector>

#include "src/syntax/ast.h"

namespace seqdl {

struct DependencyGraph {
  /// head relation -> relations occurring in bodies of its rules (IDB only).
  std::map<RelId, std::set<RelId>> edges;
  /// Subset of edges arising from negated body predicates (body rel ids).
  std::map<RelId, std::set<RelId>> negative_edges;

  bool HasEdge(RelId from, RelId to) const;
};

DependencyGraph BuildDependencyGraph(const Program& p);

/// True iff the graph has a directed cycle (this is the R feature).
bool HasCycle(const DependencyGraph& g);

/// Relations on some directed cycle (i.e. belonging to a nontrivial SCC or
/// having a self-loop).
std::set<RelId> RecursiveRels(const DependencyGraph& g);

/// The strongly connected components of the graph (Tarjan; reverse
/// topological order). Singleton components without a self-loop are
/// included — callers that care about recursion should check size > 1 or
/// HasEdge(v, v).
std::vector<std::set<RelId>> StronglyConnectedComponents(
    const DependencyGraph& g);

/// True iff the set of rules, taken as one stratum, is recursive (some head
/// relation of the set reaches itself through bodies of the set).
bool RulesAreRecursive(const std::vector<Rule>& rules);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_DEPENDENCY_GRAPH_H_
