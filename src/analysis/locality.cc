#include "src/analysis/locality.h"

#include <optional>
#include <string>
#include <vector>

namespace seqdl {

namespace {

/// The partition-key variable of a predicate: its first argument when
/// that argument is exactly one variable (the only shape whose binding
/// *is* the fact's partition key). nullopt for ground, compound, or
/// missing first arguments, and for arity-0 predicates.
std::optional<VarId> KeyVar(const Predicate& pred) {
  if (pred.args.empty() || !pred.args[0].IsSingleVar()) return std::nullopt;
  return pred.args[0].items[0].var;
}

/// Body predicate literals over relations that are actually partitioned
/// (not broadcast-replicated).
std::vector<const Literal*> PartitionedLits(const Rule& r,
                                            const std::set<RelId>& broadcast) {
  std::vector<const Literal*> out;
  for (const Literal& l : r.body) {
    if (l.is_predicate() && broadcast.count(l.pred.rel) == 0) {
      out.push_back(&l);
    }
  }
  return out;
}

/// True iff `r` preserves the co-partitioning invariant for its head,
/// given the current candidate set `co`: partitioned body literals (if
/// any) all key on one shared variable over co-partitioned relations,
/// at least one positively, and the head's first argument is that same
/// variable. A rule reading only broadcast relations derives its head on
/// every shard, which satisfies the invariant trivially.
bool PreservesCoPartitioning(const Rule& r, const std::set<RelId>& broadcast,
                             const std::set<RelId>& co) {
  std::vector<const Literal*> lits = PartitionedLits(r, broadcast);
  if (lits.empty()) return true;
  std::optional<VarId> key;
  bool any_positive = false;
  for (const Literal* l : lits) {
    if (co.count(l->pred.rel) == 0) return false;
    std::optional<VarId> v = KeyVar(l->pred);
    if (!v.has_value()) return false;
    if (key.has_value() && *key != *v) return false;
    key = v;
    any_positive = any_positive || !l->negated;
  }
  if (!any_positive) return false;
  std::optional<VarId> head_key = KeyVar(r.head);
  return head_key.has_value() && *head_key == *key;
}

void AddFinding(DiagnosticList* diags, const char* code, const Rule& r,
                std::string message, std::vector<std::string> notes) {
  if (diags == nullptr) return;
  Diagnostic d = Diagnostic::Warning(code, r.span, std::move(message));
  d.notes = std::move(notes);
  diags->Add(std::move(d));
}

}  // namespace

const char* LocalityClassToString(LocalityClass c) {
  switch (c) {
    case LocalityClass::kTransparent: return "transparent";
    case LocalityClass::kResidual:    return "residual";
  }
  return "unknown";
}

LocalityReport AnalyzeLocality(const Universe& u, const Program& p,
                               const LocalityOptions& opts,
                               DiagnosticList* diags) {
  LocalityReport report;

  // Greatest fixpoint for the co-partitioned set: start from every
  // non-broadcast relation the program touches and peel off derived
  // relations with a rule that breaks the invariant, until stable.
  std::set<RelId> co;
  for (RelId rel : AllRels(p)) {
    if (opts.broadcast.count(rel) == 0) co.insert(rel);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule* r : p.AllRules()) {
      if (co.count(r->head.rel) == 0) continue;
      if (!PreservesCoPartitioning(*r, opts.broadcast, co)) {
        co.erase(r->head.rel);
        changed = true;
      }
    }
  }
  report.co_partitioned = co;

  // Per-rule transparency: a rule is shard-local iff its partitioned
  // body literals are (a) absent, (b) one positive scan (every global
  // fact lives on some shard, so the distributed union covers it), or
  // (c) a join keyed on one shared first-column variable over
  // co-partitioned relations, with at least one positive member pinning
  // the evaluation to the key's owning shard.
  for (const Rule* r : p.AllRules()) {
    std::vector<const Literal*> lits = PartitionedLits(*r, opts.broadcast);
    if (lits.empty()) continue;
    if (lits.size() == 1 && !lits[0]->negated) continue;

    // Any negated partitioned literal without a positive co-partitioned
    // anchor fires from local absence, which proves nothing globally.
    bool any_positive = false;
    for (const Literal* l : lits) any_positive = any_positive || !l->negated;
    if (!any_positive) {
      ++report.violations;
      AddFinding(diags, "SD202", *r,
                 "negation over partitioned relation '" +
                     u.RelName(lits[0]->pred.rel) +
                     "' is not shard-local: a shard's missing fact may "
                     "exist on another shard",
                 {"the coordinator will gather and evaluate this program "
                  "itself (residual evaluation)"});
      continue;
    }

    std::optional<VarId> key;
    bool keyed = true;
    for (const Literal* l : lits) {
      std::optional<VarId> v = KeyVar(l->pred);
      if (!v.has_value() || (key.has_value() && *key != *v)) {
        keyed = false;
        break;
      }
      key = v;
    }
    if (!keyed) {
      ++report.violations;
      std::vector<std::string> notes;
      for (const Literal* l : lits) {
        notes.push_back("partitioned relation '" + u.RelName(l->pred.rel) +
                        "' is keyed by its first argument");
      }
      AddFinding(diags, "SD201", *r,
                 "join over partitioned relations does not key on the "
                 "partition column: the joined facts may live on "
                 "different shards",
                 std::move(notes));
      continue;
    }

    bool all_co = true;
    for (const Literal* l : lits) {
      if (co.count(l->pred.rel) != 0) continue;
      all_co = false;
      ++report.violations;
      AddFinding(diags, l->negated ? "SD202" : "SD203", *r,
                 "derived relation '" + u.RelName(l->pred.rel) +
                     "' is not co-partitioned: a defining rule drops the "
                     "partition key from the head's first argument",
                 {"its facts may live on a different shard than the key "
                  "they join on"});
    }
    (void)all_co;
  }

  report.cls = report.violations == 0 ? LocalityClass::kTransparent
                                      : LocalityClass::kResidual;
  if (report.cls == LocalityClass::kTransparent && diags != nullptr) {
    diags->Add(Diagnostic::Note(
        "SD200", SourceSpan(),
        "program is distribution-transparent: every rule evaluates "
        "shard-locally"));
  }
  return report;
}

}  // namespace seqdl
