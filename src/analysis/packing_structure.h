// Packing structures δ(e) (paper §4.3.4).
//
//   δ(ϵ) = *            δ(a) = *  (a an atomic value or variable)
//   δ(<e>) = * · <δ(e)> · *
//   δ(e1·e2) = δ(e1)·δ(e2) with consecutive stars collapsed
//
// A packing structure is represented canonically as the list of its packed
// children: the structure  * <c1> * <c2> ... <ck> *  has children c1..ck.
// A structure with no children is the single star "*" (no packing).
//
// If δ(e) has n stars (counted at all nesting depths), e is obtained from
// δ(e) by replacing the i-th star (in preorder) by the i-th *component* of
// e; components are packing-free by construction.
#ifndef SEQDL_ANALYSIS_PACKING_STRUCTURE_H_
#define SEQDL_ANALYSIS_PACKING_STRUCTURE_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/syntax/ast.h"

namespace seqdl {

struct PackingStructure {
  std::vector<PackingStructure> children;

  bool IsStar() const { return children.empty(); }

  /// Total number of stars at all depths (= number of components).
  size_t NumStars() const;

  /// e.g. "*·<*·<*>·*>·*·<*>·*"; "*" for the packing-free structure.
  std::string ToString() const;

  friend bool operator==(const PackingStructure& a, const PackingStructure& b) {
    return a.children == b.children;
  }
  friend bool operator!=(const PackingStructure& a,
                         const PackingStructure& b) {
    return !(a == b);
  }
};

/// δ(e).
PackingStructure Delta(const PathExpr& e);

/// The components of e, in preorder star order; each is packing-free.
/// Components().size() == Delta(e).NumStars().
std::vector<PathExpr> Components(const PathExpr& e);

/// Reassembles an expression with structure `ps` from components (inverse
/// of Components). Requires components.size() == ps.NumStars().
Result<PathExpr> FromComponents(const PackingStructure& ps,
                                const std::vector<PathExpr>& components);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_PACKING_STRUCTURE_H_
