// Shard-locality analysis: decides statically whether a program can be
// evaluated *distribution-transparently* on a hash-partitioned cluster
// (src/cluster/): every shard runs the unmodified program over its EDB
// partition and the union of the per-shard answers equals the single-node
// answer. Programs that fail the analysis still run correctly — the
// coordinator falls back to gathering the relevant EDB and finishing the
// evaluation locally (residual evaluation) — so these findings are about
// *where* work happens, never about answers.
//
// The partitioning model (cluster/partitioner.h): facts are routed by a
// content hash of their first-column value (shared across relations, so
// facts agreeing on the key co-locate), except that
// relations named in LocalityOptions::broadcast are replicated in full on
// every shard. A rule therefore evaluates shard-locally when all the
// partitioned facts it joins are guaranteed co-located, which the pass
// establishes through a co-partitioning invariant: every fact with
// first-column key k (base or derived) is present on the shard owning k.
// EDB relations satisfy it by construction; a derived relation satisfies
// it when each of its rules joins partitioned relations on one shared
// first-column variable and carries that variable into the head's first
// argument (computed as a greatest fixpoint over the program's rules).
//
//   SD200  program is distribution-transparent     note
//   SD201  multi-way join over partitioned         warning
//          relations not keyed on the partition
//          column (first argument)
//   SD202  negation over a partitioned relation    warning
//          is not shard-local
//   SD203  derived relation is not co-partitioned  warning
//          (a defining rule drops the partition
//          key from the head's first argument)
#ifndef SEQDL_ANALYSIS_LOCALITY_H_
#define SEQDL_ANALYSIS_LOCALITY_H_

#include <set>

#include "src/analysis/diagnostics.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct LocalityOptions {
  /// Relations replicated in full on every shard instead of partitioned
  /// (small dimension tables). Joins against them are always shard-local.
  std::set<RelId> broadcast;
};

enum class LocalityClass : uint8_t {
  /// Every rule evaluates shard-locally: scatter the program, union the
  /// per-shard answers.
  kTransparent = 0,
  /// Some rule needs facts from more than one shard: the coordinator must
  /// gather the EDB and finish the evaluation itself.
  kResidual = 1,
};

/// "transparent" / "residual".
const char* LocalityClassToString(LocalityClass c);

struct LocalityReport {
  LocalityClass cls = LocalityClass::kTransparent;
  /// Relations proven co-partitioned (EDB relations by construction,
  /// derived relations by the head-key fixpoint). Broadcast relations are
  /// never members — they are replicated, not partitioned.
  std::set<RelId> co_partitioned;
  /// Number of SD201/SD202/SD203 findings (0 iff transparent).
  size_t violations = 0;
};

/// Classifies `p` against the cluster partitioning model. Appends one
/// SD2xx diagnostic per finding to `diags` (may be null), plus an SD200
/// note when the program is transparent. `p` should already be valid
/// (ValidateProgram) — the pass assumes safe, stratified rules.
LocalityReport AnalyzeLocality(const Universe& u, const Program& p,
                               const LocalityOptions& opts = {},
                               DiagnosticList* diags = nullptr);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_LOCALITY_H_
