#include "src/analysis/dependency_graph.h"

#include <functional>

namespace seqdl {

bool DependencyGraph::HasEdge(RelId from, RelId to) const {
  auto it = edges.find(from);
  return it != edges.end() && it->second.count(to) > 0;
}

DependencyGraph BuildDependencyGraph(const Program& p) {
  std::set<RelId> idb = IdbRels(p);
  DependencyGraph g;
  for (RelId r : idb) g.edges[r];  // ensure all IDB nodes exist
  for (const Rule* r : p.AllRules()) {
    for (const Literal& l : r->body) {
      if (!l.is_predicate()) continue;
      if (!idb.count(l.pred.rel)) continue;
      g.edges[r->head.rel].insert(l.pred.rel);
      if (l.negated) g.negative_edges[r->head.rel].insert(l.pred.rel);
    }
  }
  return g;
}

namespace {

// Iterative DFS cycle detection / SCC via Tarjan.
struct Tarjan {
  const DependencyGraph& g;
  std::map<RelId, int> index, low;
  std::map<RelId, bool> on_stack;
  std::vector<RelId> stack;
  int counter = 0;
  std::vector<std::set<RelId>> sccs;

  explicit Tarjan(const DependencyGraph& graph) : g(graph) {}

  void Run() {
    for (const auto& [node, _] : g.edges) {
      if (!index.count(node)) Visit(node);
    }
  }

  void Visit(RelId v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    auto it = g.edges.find(v);
    if (it != g.edges.end()) {
      for (RelId w : it->second) {
        if (!index.count(w)) {
          Visit(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::set<RelId> scc;
      while (true) {
        RelId w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.insert(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

}  // namespace

std::vector<std::set<RelId>> StronglyConnectedComponents(
    const DependencyGraph& g) {
  Tarjan t(g);
  t.Run();
  return std::move(t.sccs);
}

std::set<RelId> RecursiveRels(const DependencyGraph& g) {
  Tarjan t(g);
  t.Run();
  std::set<RelId> out;
  for (const std::set<RelId>& scc : t.sccs) {
    if (scc.size() > 1) {
      out.insert(scc.begin(), scc.end());
    } else {
      RelId v = *scc.begin();
      if (g.HasEdge(v, v)) out.insert(v);
    }
  }
  return out;
}

bool HasCycle(const DependencyGraph& g) { return !RecursiveRels(g).empty(); }

bool RulesAreRecursive(const std::vector<Rule>& rules) {
  Program p;
  p.strata.push_back(Stratum{rules});
  return HasCycle(BuildDependencyGraph(p));
}

}  // namespace seqdl
