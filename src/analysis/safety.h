// Safety (limited variables, paper §2.2) and whole-program validation.
//
// The limited variables of a rule are the smallest set such that
//   1. every variable occurring in a positive predicate in the body is
//      limited; and
//   2. if all variables occurring in one side of a positive equation in the
//      body are limited, then so are all variables of the other side.
// A rule is safe iff all its variables are limited. A program is valid iff
// all rules are safe and negation is stratified w.r.t. the declared strata.
#ifndef SEQDL_ANALYSIS_SAFETY_H_
#define SEQDL_ANALYSIS_SAFETY_H_

#include <set>

#include "src/analysis/diagnostics.h"
#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// The limited variables of `r`.
std::set<VarId> LimitedVars(const Rule& r);

/// True iff all variables of `r` are limited.
bool IsSafeRule(const Rule& r);

/// OK iff every rule is safe, negation is stratified w.r.t. the declared
/// strata (a relation negated in stratum i must not be an IDB head in
/// stratum i or later), and no IDB relation of a stratum is re-defined in a
/// later stratum.
Status ValidateProgram(const Universe& u, const Program& p);

/// As above, but reports *every* violation (not just the first) as a
/// structured diagnostic with the offending rule's source span:
///   SD010 unsafe rule (lists the unlimited variables)
///   SD011 negation not stratified
///   SD012 relation redefined in a later stratum
///   SD013 relation used before its definition
/// Returns the first error as a Status (OK iff the program is valid).
Status ValidateProgram(const Universe& u, const Program& p,
                       DiagnosticList* diags);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_SAFETY_H_
