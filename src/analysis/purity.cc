#include "src/analysis/purity.h"

#include <vector>

namespace seqdl {

bool PurityInfo::AllVarsPure(const PathExpr& e) const {
  for (VarId v : VarSet(e)) {
    if (!pure_vars.count(v)) return false;
  }
  return true;
}

bool PurityInfo::RuleAllPure(const Rule& r) const {
  std::vector<VarId> all;
  CollectVars(r, &all);
  for (VarId v : all) {
    if (!pure_vars.count(v)) return false;
  }
  return true;
}

PurityInfo AnalyzePurity(const Rule& r, const std::set<RelId>& flat_rels) {
  PurityInfo info;

  // Base: source variables.
  for (const Literal& l : r.body) {
    if (l.is_predicate() && !l.negated && flat_rels.count(l.pred.rel)) {
      std::vector<VarId> vars;
      CollectVars(l, &vars);
      info.pure_vars.insert(vars.begin(), vars.end());
    }
  }

  // Fixpoint over positive equations: a packing-free all-pure side makes
  // the other side's variables pure.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : r.body) {
      if (!l.is_equation() || l.negated) continue;
      auto propagate = [&](const PathExpr& from, const PathExpr& to) {
        if (from.HasPacking()) return;
        if (!info.AllVarsPure(from)) return;
        for (VarId v : VarSet(to)) {
          changed |= info.pure_vars.insert(v).second;
        }
      };
      propagate(l.lhs, l.rhs);
      propagate(l.rhs, l.lhs);
    }
  }

  // Classify positive equations.
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (!l.is_equation() || l.negated) continue;
    bool lhs_pure = info.AllVarsPure(l.lhs);
    bool rhs_pure = info.AllVarsPure(l.rhs);
    if (lhs_pure && rhs_pure) {
      info.equation_class[i] = EquationPurity::kPure;
    } else if (lhs_pure || rhs_pure) {
      info.equation_class[i] = EquationPurity::kHalfPure;
    } else {
      info.equation_class[i] = EquationPurity::kFullyImpure;
    }
  }
  return info;
}

}  // namespace seqdl
