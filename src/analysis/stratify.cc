#include "src/analysis/stratify.h"

#include <map>
#include <set>

namespace seqdl {

Result<Program> AutoStratify(const std::vector<Rule>& rules) {
  std::set<RelId> idb;
  for (const Rule& r : rules) idb.insert(r.head.rel);

  std::map<RelId, int> stratum;
  for (RelId r : idb) stratum[r] = 0;

  // Bellman-Ford style fixpoint; more than |idb| increments of any single
  // relation implies a cycle through a negative edge.
  bool changed = true;
  size_t iterations = 0;
  while (changed) {
    changed = false;
    if (++iterations > idb.size() * idb.size() + 2) {
      return Status::InvalidArgument(
          "program is not stratifiable (recursion through negation)");
    }
    for (const Rule& r : rules) {
      int& h = stratum[r.head.rel];
      for (const Literal& l : r.body) {
        if (!l.is_predicate() || !idb.count(l.pred.rel)) continue;
        int required = stratum[l.pred.rel] + (l.negated ? 1 : 0);
        if (h < required) {
          h = required;
          changed = true;
        }
      }
    }
  }

  int max_stratum = 0;
  for (const auto& [_, s] : stratum) max_stratum = std::max(max_stratum, s);

  Program p;
  p.strata.resize(static_cast<size_t>(max_stratum) + 1);
  for (const Rule& r : rules) {
    p.strata[static_cast<size_t>(stratum[r.head.rel])].rules.push_back(r);
  }
  // Drop empty strata (can occur when stratum numbers have gaps).
  std::vector<Stratum> kept;
  for (Stratum& s : p.strata) {
    if (!s.rules.empty()) kept.push_back(std::move(s));
  }
  if (kept.empty()) kept.emplace_back();
  p.strata = std::move(kept);
  return p;
}

Result<Program> Restratify(const Program& p) {
  std::vector<Rule> rules;
  for (const Rule* r : p.AllRules()) rules.push_back(*r);
  return AutoStratify(rules);
}

}  // namespace seqdl
