// Admission control for untrusted programs, grounded in the paper's
// fragment lattice (§3-5): Sequence Datalog with packing or with
// recursion over expanding equations can generate paths of unbounded
// length, so its fixpoints need not terminate. Before running a program
// on behalf of a client, AnalyzeAdmission classifies it:
//
//   *tame*       — every recursive-step rule is term-preserving (no rule
//                  participating in an SCC of the dependency graph packs,
//                  grows its head, or uses an expanding equation). The
//                  fixpoint only ever re-combines subpaths of the finite
//                  input, so it terminates on every database; run as-is.
//   *generative* — some recursive-step rule can produce longer paths each
//                  round (SD301 head growth, SD302 packing, SD303
//                  expanding equation). Termination is not guaranteed:
//                  under AdmissionPolicy::kStrict such programs are
//                  rejected; under kBudget they run with enforced
//                  RunOptions limits (derived-fact count, rounds, maximum
//                  path length) and fail with kResourceExhausted when a
//                  cap is hit; under kOff everything runs unrestricted.
//
// Soundness of the tame check: if no rule of an SCC enlarges terms, every
// derivable fact over the SCC's relations is built from paths already
// derivable below it, a finite set; induction over SCCs in reverse
// topological order bounds the whole fixpoint. Nonrecursive programs are
// always tame (the engine applies each stratum's rules finitely often).
// The converse is heuristic — a flagged program may still terminate —
// which is exactly why kBudget exists as the default-safe middle ground.
//
// Admission diagnostics:
//   SD300  note:    generative program admitted under enforced budgets
//   SD301  warning: recursive rule grows paths in its head
//   SD302  warning: packing inside a recursive rule
//   SD303  warning: expanding equation inside a recursive rule
// Under kStrict the SD301-SD303 findings are reported as errors.
#ifndef SEQDL_ANALYSIS_ADMISSION_H_
#define SEQDL_ANALYSIS_ADMISSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/analysis/features.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// How a serving process treats generative programs.
enum class AdmissionPolicy : uint8_t {
  kOff = 0,     // run everything unrestricted (trusted clients)
  kBudget = 1,  // run generative programs under enforced resource caps
  kStrict = 2,  // reject generative programs outright
};

/// The verdict AnalyzeAdmission reaches for one program under a policy.
enum class AdmissionVerdict : uint8_t {
  kTame = 0,                // provably terminating; admitted as-is
  kGenerativeBudgeted = 1,  // potentially non-terminating; admitted with caps
  kRejected = 2,            // potentially non-terminating; refused (strict)
};

const char* AdmissionPolicyToString(AdmissionPolicy p);
const char* AdmissionVerdictToString(AdmissionVerdict v);

/// Parses "off" / "budget" / "strict".
Result<AdmissionPolicy> ParseAdmissionPolicy(const std::string& s);

/// The full classification of one program.
struct AdmissionReport {
  /// Features the program uses (paper §3).
  FeatureSet features;
  /// Label of the core-fragment equivalence class (Figure 1) the
  /// program's features fall into, e.g. "{I,N} = {E,I,N}".
  std::string fragment_class;
  /// True iff some recursive-step rule is generative (SD301-SD303).
  bool generative = false;
  /// SD301-SD303 findings (warnings), one per generative mechanism per
  /// rule, each with the rule's source span.
  DiagnosticList diagnostics;

  /// The verdict under `policy` (tame programs are always kTame).
  AdmissionVerdict Verdict(AdmissionPolicy policy) const;
};

/// Classifies `p` (which should already be valid per ValidateProgram).
AdmissionReport AnalyzeAdmission(const Universe& u, const Program& p);

/// The report's diagnostics adjusted for `policy`: under kStrict the
/// SD301-SD303 warnings become errors (the program will be refused);
/// under kBudget a generative program additionally gains an SD300 note
/// recording that it was admitted with enforced caps.
DiagnosticList PolicyDiagnostics(const AdmissionReport& r,
                                 AdmissionPolicy policy);

}  // namespace seqdl

#endif  // SEQDL_ANALYSIS_ADMISSION_H_
