#include "src/analysis/admission.h"

#include <map>

#include "src/analysis/dependency_graph.h"
#include "src/analysis/safety.h"
#include "src/fragments/fragments.h"
#include "src/syntax/printer.h"

namespace seqdl {

const char* AdmissionPolicyToString(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kOff:
      return "off";
    case AdmissionPolicy::kBudget:
      return "budget";
    case AdmissionPolicy::kStrict:
      return "strict";
  }
  return "?";
}

const char* AdmissionVerdictToString(AdmissionVerdict v) {
  switch (v) {
    case AdmissionVerdict::kTame:
      return "tame";
    case AdmissionVerdict::kGenerativeBudgeted:
      return "generative-budgeted";
    case AdmissionVerdict::kRejected:
      return "rejected";
  }
  return "?";
}

Result<AdmissionPolicy> ParseAdmissionPolicy(const std::string& s) {
  if (s == "off") return AdmissionPolicy::kOff;
  if (s == "budget") return AdmissionPolicy::kBudget;
  if (s == "strict") return AdmissionPolicy::kStrict;
  return Status::InvalidArgument("unknown admission policy '" + s +
                                 "' (expected off, budget, or strict)");
}

AdmissionVerdict AdmissionReport::Verdict(AdmissionPolicy policy) const {
  if (!generative) return AdmissionVerdict::kTame;
  switch (policy) {
    case AdmissionPolicy::kOff:
      return AdmissionVerdict::kTame;
    case AdmissionPolicy::kBudget:
      return AdmissionVerdict::kGenerativeBudgeted;
    case AdmissionPolicy::kStrict:
      return AdmissionVerdict::kRejected;
  }
  return AdmissionVerdict::kTame;
}

namespace {

/// Label of the core-fragment equivalence class (Figure 1) containing
/// the program's features with A and P projected away (Theorem 6.1:
/// arity and packing are redundant for expressiveness).
std::string ClassLabel(FeatureSet features) {
  FeatureSet core =
      features.Without(Feature::kArity).Without(Feature::kPacking);
  for (const FragmentClass& c : CoreEquivalenceClasses()) {
    for (FeatureSet m : c.members) {
      if (m == core) return c.Label();
    }
  }
  return core.ToString();  // unreachable: the classes partition all 16
}

/// Variables limited *directly* by a positive body predicate (without
/// the equation-propagation fixpoint of LimitedVars): these range over
/// subpaths of facts that already exist, so they cannot be a source of
/// growth.
std::set<VarId> PredicateLimitedVars(const Rule& r) {
  std::set<VarId> limited;
  for (const Literal& l : r.body) {
    if (!l.is_predicate() || l.negated) continue;
    std::vector<VarId> vs;
    CollectVars(l, &vs);
    limited.insert(vs.begin(), vs.end());
  }
  return limited;
}

/// True iff the positive equation can assign some variable an image
/// longer than (or nested deeper than) any existing path: one side is a
/// multi-item or packed expression over known (predicate-limited)
/// variables, and the other side receives it through a variable that is
/// not predicate-limited. Decomposing equations (multi-item side made of
/// *unknown* variables matched against a known path) only split existing
/// paths and are not flagged.
bool IsExpandingEquation(const Literal& l, const std::set<VarId>& limited) {
  if (!l.is_equation() || l.negated) return false;
  auto expands = [&](const PathExpr& s, const PathExpr& t) {
    if (s.size() < 2 && !s.HasPacking()) return false;
    if (VarSet(s).empty()) return false;  // fixed-length ground image
    for (VarId v : VarSet(t)) {
      if (!limited.count(v)) return true;  // t receives the longer image
    }
    return false;
  };
  return expands(l.lhs, l.rhs) || expands(l.rhs, l.lhs);
}

}  // namespace

AdmissionReport AnalyzeAdmission(const Universe& u, const Program& p) {
  AdmissionReport report;
  report.features = DetectFeatures(p);
  report.fragment_class = ClassLabel(report.features);

  DependencyGraph g = BuildDependencyGraph(p);
  std::vector<std::set<RelId>> sccs = StronglyConnectedComponents(g);
  std::map<RelId, size_t> scc_of;
  for (size_t i = 0; i < sccs.size(); ++i) {
    for (RelId r : sccs[i]) scc_of[r] = i;
  }

  for (const Rule* r : p.AllRules()) {
    auto it = scc_of.find(r->head.rel);
    if (it == scc_of.end()) continue;
    const std::set<RelId>& scc = sccs[it->second];
    // A *recursive-step* rule derives into an SCC while reading from the
    // same SCC: it can fire again on its own output. Base-case rules of
    // a recursive relation (reading only from below) run once per
    // outside fact and cannot drive growth.
    bool recursive_step = false;
    for (const Literal& l : r->body) {
      if (l.is_predicate() && !l.negated && scc.count(l.pred.rel) &&
          (scc.size() > 1 || l.pred.rel == r->head.rel)) {
        recursive_step = true;
        break;
      }
    }
    if (!recursive_step) continue;

    // SD301: a head argument concatenates around a variable, so each
    // round can derive a strictly longer path than it consumed.
    for (const PathExpr& arg : r->head.args) {
      if (arg.size() >= 2 && !VarSet(arg).empty()) {
        Diagnostic d = Diagnostic::Warning(
            "SD301", r->span,
            "recursive rule grows paths: head argument " +
                FormatExpr(u, arg) + " of " + u.RelName(r->head.rel) +
                " concatenates around a variable");
        d.notes.push_back("rule: " + FormatRule(u, *r));
        report.diagnostics.Add(std::move(d));
        break;
      }
    }
    // SD302: packing in the head of a recursive rule nests one level
    // deeper per round (body packing only pattern-matches and is fine).
    for (const PathExpr& arg : r->head.args) {
      if (arg.HasPacking()) {
        Diagnostic d = Diagnostic::Warning(
            "SD302", r->span,
            "packing in recursive rule: head of " + u.RelName(r->head.rel) +
                " packs a subexpression, nesting grows every round");
        d.notes.push_back("rule: " + FormatRule(u, *r));
        report.diagnostics.Add(std::move(d));
        break;
      }
    }
    // SD303: an equation that manufactures a longer path and feeds it
    // back into the recursion.
    std::set<VarId> limited = PredicateLimitedVars(*r);
    for (const Literal& l : r->body) {
      if (!IsExpandingEquation(l, limited)) continue;
      Diagnostic d = Diagnostic::Warning(
          "SD303", r->span,
          "expanding equation in recursive rule: " + FormatLiteral(u, l) +
              " binds a variable to a longer path each round");
      d.notes.push_back("rule: " + FormatRule(u, *r));
      report.diagnostics.Add(std::move(d));
    }
  }
  report.generative = !report.diagnostics.empty();
  return report;
}

DiagnosticList PolicyDiagnostics(const AdmissionReport& r,
                                 AdmissionPolicy policy) {
  DiagnosticList out;
  for (const Diagnostic& d : r.diagnostics.all()) {
    Diagnostic copy = d;
    if (policy == AdmissionPolicy::kStrict) copy.severity = Severity::kError;
    out.Add(std::move(copy));
  }
  if (r.generative && policy == AdmissionPolicy::kBudget) {
    out.Add(Diagnostic::Note(
        "SD300", SourceSpan(),
        "potentially non-terminating program admitted under enforced "
        "budgets (derived facts, rounds, and path length are capped)"));
  }
  return out;
}

}  // namespace seqdl
