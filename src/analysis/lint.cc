#include "src/analysis/lint.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/dependency_graph.h"
#include "src/syntax/printer.h"

namespace seqdl {

namespace {

/// Display form of a variable, with its sigil ("@x" / "$x").
std::string FormatVar(const Universe& u, VarId v) {
  return (u.VarKindOf(v) == VarKind::kAtomic ? "@" : "$") + u.VarName(v);
}

/// Raw occurrence counts of every variable (at any packing depth), unlike
/// CollectVars which deduplicates.
void CountVars(const PathExpr& e, std::map<VarId, int>* counts) {
  for (const ExprItem& it : e.items) {
    if (it.is_var()) {
      ++(*counts)[it.var];
    } else if (it.kind == ExprItem::Kind::kPack) {
      CountVars(*it.pack, counts);
    }
  }
}

void CountVars(const Literal& l, std::map<VarId, int>* counts) {
  if (l.is_predicate()) {
    for (const PathExpr& a : l.pred.args) CountVars(a, counts);
  } else {
    CountVars(l.lhs, counts);
    CountVars(l.rhs, counts);
  }
}

/// True iff the equation literal can never hold under any substitution:
/// a positive equation of two distinct ground expressions, or a negated
/// equation whose sides are syntactically identical. Ground expressions
/// are canonical (flat, with packs recursively canonical), so structural
/// equality coincides with path equality.
bool EquationTriviallyFalse(const Literal& l) {
  if (!l.is_equation()) return false;
  if (l.negated) return l.lhs == l.rhs;
  return l.lhs.IsGround() && l.rhs.IsGround() && !(l.lhs == l.rhs);
}

/// SD101: rule byte-identical (same head, same body literal sequence) to
/// an earlier rule of the program.
void LintDuplicateRules(const Universe& u, const Program& p,
                        DiagnosticList* diags) {
  std::vector<const Rule*> rules = p.AllRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (rules[i]->head == rules[j]->head && rules[i]->body == rules[j]->body) {
        Diagnostic d = Diagnostic::Warning(
            "SD101", rules[i]->span,
            "duplicate rule: identical to an earlier rule");
        if (rules[j]->span.valid()) {
          d.notes.push_back("first occurrence at line " +
                            std::to_string(rules[j]->span.line));
        }
        d.notes.push_back("rule: " + FormatRule(u, *rules[i]));
        diags->Add(std::move(d));
        break;  // report each duplicate once
      }
    }
  }
}

/// SD102: the same literal occurs twice in one body.
void LintDuplicateLiterals(const Universe& u, const Program& p,
                           DiagnosticList* diags) {
  for (const Rule* r : p.AllRules()) {
    for (size_t i = 0; i < r->body.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (r->body[i] == r->body[j]) {
          Diagnostic d = Diagnostic::Warning(
              "SD102", r->span,
              "duplicate body literal: " + FormatLiteral(u, r->body[i]));
          d.notes.push_back("rule: " + FormatRule(u, *r));
          diags->Add(std::move(d));
          break;
        }
      }
    }
  }
}

/// SD103: a variable occurs exactly once in the whole rule. In a safe
/// rule such a variable only ranges over its predicate's matches without
/// constraining anything — usually a typo for another variable.
void LintSingletonVars(const Universe& u, const Program& p,
                       DiagnosticList* diags) {
  for (const Rule* r : p.AllRules()) {
    std::map<VarId, int> counts;
    for (const PathExpr& a : r->head.args) CountVars(a, &counts);
    for (const Literal& l : r->body) CountVars(l, &counts);
    std::vector<VarId> order;
    CollectVars(*r, &order);
    for (VarId v : order) {
      if (counts[v] != 1) continue;
      Diagnostic d = Diagnostic::Warning(
          "SD103", r->span,
          "singleton variable " + FormatVar(u, v) +
              ": occurs exactly once in the rule");
      d.notes.push_back("rule: " + FormatRule(u, *r));
      diags->Add(std::move(d));
    }
  }
}

/// SD104: the rule can never derive a fact — it reads a relation with no
/// possible facts (no EDB source and no fireable rule), or a body
/// equation is trivially false.
void LintNeverFires(const Universe& u, const Program& p,
                    DiagnosticList* diags) {
  std::set<RelId> idb = IdbRels(p);
  // Fixpoint of "may have facts": EDB relations are external sources and
  // assumed nonempty; an IDB relation may have facts once some rule for
  // it only reads may-have-facts relations and has no impossible
  // equation. (Negated literals never block firing — an empty negated
  // relation satisfies the negation.)
  std::set<RelId> derivable = EdbRels(p);
  auto can_fire = [&](const Rule& r) {
    for (const Literal& l : r.body) {
      if (EquationTriviallyFalse(l)) return false;
      if (l.is_predicate() && !l.negated && !derivable.count(l.pred.rel)) {
        return false;
      }
    }
    return true;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule* r : p.AllRules()) {
      if (derivable.count(r->head.rel)) continue;
      if (can_fire(*r)) {
        derivable.insert(r->head.rel);
        changed = true;
      }
    }
  }
  for (const Rule* r : p.AllRules()) {
    if (can_fire(*r)) continue;
    Diagnostic d = Diagnostic::Warning("SD104", r->span,
                                       "rule can never fire");
    for (const Literal& l : r->body) {
      if (EquationTriviallyFalse(l)) {
        d.notes.push_back("equation " + FormatLiteral(u, l) +
                          " can never hold");
      } else if (l.is_predicate() && !l.negated &&
                 !derivable.count(l.pred.rel)) {
        d.notes.push_back("relation " + u.RelName(l.pred.rel) +
                          " can never contain facts");
      }
    }
    d.notes.push_back("rule: " + FormatRule(u, *r));
    diags->Add(std::move(d));
  }
}

/// SD105: the positive body literals split into independent groups that
/// share no variables (directly or through equations): the join
/// enumerates their cartesian product.
void LintCrossProducts(const Universe& u, const Program& p,
                       const LintOptions& opts, DiagnosticList* diags) {
  for (const Rule* r : p.AllRules()) {
    // Positive literals and their variable sets.
    std::vector<const Literal*> lits;
    std::vector<std::set<VarId>> vars;
    for (const Literal& l : r->body) {
      if (l.negated) continue;
      std::vector<VarId> vs;
      CollectVars(l, &vs);
      lits.push_back(&l);
      vars.push_back(std::set<VarId>(vs.begin(), vs.end()));
    }
    // Union-find over literal indices: connect literals sharing a var.
    std::vector<size_t> parent(lits.size());
    for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (size_t i = 0; i < lits.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        bool shared = false;
        for (VarId v : vars[i]) {
          if (vars[j].count(v)) {
            shared = true;
            break;
          }
        }
        if (shared) parent[find(i)] = find(j);
      }
    }
    // A cross product exists iff predicates *with variables* land in
    // more than one component (variable-free predicates are membership
    // tests, not join inputs; equations only serve to connect).
    std::map<size_t, std::vector<size_t>> groups;
    for (size_t i = 0; i < lits.size(); ++i) {
      if (lits[i]->is_predicate() && !vars[i].empty()) {
        groups[find(i)].push_back(i);
      }
    }
    if (groups.size() < 2) continue;
    std::string joined;
    for (const auto& [root, members] : groups) {
      (void)root;
      if (!joined.empty()) joined += " | ";
      for (size_t k = 0; k < members.size(); ++k) {
        if (k > 0) joined += ", ";
        joined += FormatPredicate(u, lits[members[k]]->pred);
      }
    }
    Diagnostic d = Diagnostic::Warning(
        "SD105", r->span,
        "cross-product join: body predicates form " +
            std::to_string(groups.size()) +
            " groups sharing no variables: " + joined);
    if (opts.stats != nullptr) {
      std::string sizes;
      for (const auto& [root, members] : groups) {
        (void)root;
        for (size_t i : members) {
          RelId rel = lits[i]->pred.rel;
          if (!opts.stats->Knows(rel)) continue;
          if (!sizes.empty()) sizes += ", ";
          sizes += u.RelName(rel) + "=" +
                   std::to_string(opts.stats->relations.at(rel).tuples);
        }
      }
      if (!sizes.empty()) {
        d.notes.push_back("measured relation sizes: " + sizes);
      }
    }
    d.notes.push_back("rule: " + FormatRule(u, *r));
    diags->Add(std::move(d));
  }
}

/// SD106: rules whose head is not backward-reachable from the output.
void LintDeadRules(const Universe& u, const Program& p, RelId output,
                   DiagnosticList* diags) {
  std::set<RelId> live = LiveRels(p, output);
  for (const Rule* r : p.AllRules()) {
    if (live.count(r->head.rel)) continue;
    Diagnostic d = Diagnostic::Warning(
        "SD106", r->span,
        "dead rule: " + u.RelName(r->head.rel) +
            " is never used to compute the output " + u.RelName(output));
    d.notes.push_back("rule: " + FormatRule(u, *r));
    diags->Add(std::move(d));
  }
}

/// SD107: IDB relations derived but read by no body and not the output.
void LintUnusedRels(const Universe& u, const Program& p, RelId output,
                    DiagnosticList* diags) {
  std::set<RelId> read;
  for (const Rule* r : p.AllRules()) {
    for (const Literal& l : r->body) {
      if (l.is_predicate()) read.insert(l.pred.rel);
    }
  }
  for (RelId rel : IdbRels(p)) {
    if (rel == output || read.count(rel)) continue;
    SourceSpan span;
    for (const Rule* r : p.AllRules()) {
      if (r->head.rel == rel) {
        span = r->span;
        break;
      }
    }
    diags->Add(Diagnostic::Warning(
        "SD107", span,
        "relation " + u.RelName(rel) +
            " is derived but never read and is not the output"));
  }
}

}  // namespace

size_t LintProgram(const Universe& u, const Program& p,
                   const LintOptions& opts, DiagnosticList* diags) {
  size_t before = diags->size();
  LintDuplicateRules(u, p, diags);
  LintDuplicateLiterals(u, p, diags);
  LintSingletonVars(u, p, diags);
  LintNeverFires(u, p, diags);
  LintCrossProducts(u, p, opts, diags);
  if (opts.output.has_value()) {
    LintDeadRules(u, p, *opts.output, diags);
    LintUnusedRels(u, p, *opts.output, diags);
  }
  return diags->size() - before;
}

std::set<RelId> LiveRels(const Program& p, RelId output) {
  DependencyGraph g = BuildDependencyGraph(p);
  std::set<RelId> live = {output};
  std::vector<RelId> work = {output};
  while (!work.empty()) {
    RelId r = work.back();
    work.pop_back();
    auto it = g.edges.find(r);
    if (it == g.edges.end()) continue;
    for (RelId s : it->second) {
      if (live.insert(s).second) work.push_back(s);
    }
  }
  return live;
}

Program RemoveDeadRules(const Program& p, RelId output) {
  std::set<RelId> live = LiveRels(p, output);
  Program out;
  for (const Stratum& s : p.strata) {
    Stratum kept;
    for (const Rule& r : s.rules) {
      if (live.count(r.head.rel)) kept.rules.push_back(r);
    }
    if (!kept.rules.empty()) out.strata.push_back(std::move(kept));
  }
  return out;
}

}  // namespace seqdl
