// Recursive-descent parser for the seqdl surface syntax (see lexer.h for the
// grammar). Interns all symbols into the given Universe.
#ifndef SEQDL_SYNTAX_PARSER_H_
#define SEQDL_SYNTAX_PARSER_H_

#include <string_view>

#include "src/analysis/diagnostics.h"
#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// Parses a full program (one or more strata separated by '---').
Result<Program> ParseProgram(Universe& u, std::string_view source);

/// As above, but additionally records lex/parse errors as structured
/// SD001/SD002 diagnostics with precise source spans, and stamps each
/// parsed rule's Rule::span. The returned Status is unchanged.
Result<Program> ParseProgram(Universe& u, std::string_view source,
                             DiagnosticList* diags);

/// Parses a single rule (must consume the entire input).
Result<Rule> ParseRule(Universe& u, std::string_view source);

/// Parses a path expression (must consume the entire input).
Result<PathExpr> ParsePathExpr(Universe& u, std::string_view source);

}  // namespace seqdl

#endif  // SEQDL_SYNTAX_PARSER_H_
