// Recursive-descent parser for the seqdl surface syntax (see lexer.h for the
// grammar). Interns all symbols into the given Universe.
#ifndef SEQDL_SYNTAX_PARSER_H_
#define SEQDL_SYNTAX_PARSER_H_

#include <string_view>

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// Parses a full program (one or more strata separated by '---').
Result<Program> ParseProgram(Universe& u, std::string_view source);

/// Parses a single rule (must consume the entire input).
Result<Rule> ParseRule(Universe& u, std::string_view source);

/// Parses a path expression (must consume the entire input).
Result<PathExpr> ParsePathExpr(Universe& u, std::string_view source);

}  // namespace seqdl

#endif  // SEQDL_SYNTAX_PARSER_H_
