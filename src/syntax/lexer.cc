#include "src/syntax/lexer.h"

#include <cctype>

namespace seqdl {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kAtomVar: return "atomic variable";
    case TokenKind::kPathVar: return "path variable";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLAngle: return "'<'";
    case TokenKind::kRAngle: return "'>'";
    case TokenKind::kComma: return "','";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kConcat: return "concatenation";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kEps: return "'eps'";
    case TokenKind::kArrow: return "'<-'";
    case TokenKind::kStratumSep: return "'---'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

class Scanner {
 public:
  Scanner(std::string_view src, DiagnosticList* diags)
      : src_(src), diags_(diags) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      int line = line_, col = col_;
      SEQDL_ASSIGN_OR_RETURN(Token tok, Next());
      tok.line = line;
      tok.col = col;
      out.push_back(std::move(tok));
    }
    out.push_back(Token{TokenKind::kEnd, "", line_, col_});
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool Match(char c) {
    if (Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%' || c == '#' ||
                 (c == '/' && Peek(1) == '/')) {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& msg) const {
    if (diags_ != nullptr) {
      diags_->Add(Diagnostic::Error("SD001", SourceSpan::At(line_, col_), msg));
    }
    return Status::InvalidArgument("lex error at " + std::to_string(line_) +
                                   ":" + std::to_string(col_) + ": " + msg);
  }

  Result<Token> Next() {
    char c = Peek();
    // Interpunct '·' is UTF-8 0xC2 0xB7.
    if (static_cast<unsigned char>(c) == 0xC2 &&
        static_cast<unsigned char>(Peek(1)) == 0xB7) {
      Advance();
      Advance();
      return Token{TokenKind::kConcat, "·"};
    }
    if (IsIdentStart(c) || IsDigit(c)) {
      std::string name;
      while (!AtEnd() && IsIdentChar(Peek())) name += Advance();
      if (name == "not") return Token{TokenKind::kNot, name};
      if (name == "eps") return Token{TokenKind::kEps, name};
      return Token{TokenKind::kIdent, name};
    }
    switch (c) {
      case '"': {
        Advance();
        std::string name;
        while (!AtEnd() && Peek() != '"') name += Advance();
        if (AtEnd()) return Error("unterminated string");
        Advance();  // closing quote
        return Token{TokenKind::kIdent, name};
      }
      case '@':
      case '$': {
        char sigil = Advance();
        if (!IsIdentStart(Peek()) && !IsDigit(Peek())) {
          return Error(std::string("expected variable name after '") + sigil +
                       "'");
        }
        std::string name;
        while (!AtEnd() && IsIdentChar(Peek())) name += Advance();
        return Token{sigil == '@' ? TokenKind::kAtomVar : TokenKind::kPathVar,
                     name};
      }
      case '(':
        Advance();
        return Token{TokenKind::kLParen, "("};
      case ')':
        Advance();
        return Token{TokenKind::kRParen, ")"};
      case '<':
        Advance();
        if (Match('-')) return Token{TokenKind::kArrow, "<-"};
        return Token{TokenKind::kLAngle, "<"};
      case '>':
        Advance();
        return Token{TokenKind::kRAngle, ">"};
      case ',':
        Advance();
        return Token{TokenKind::kComma, ","};
      case '.':
        Advance();
        return Token{TokenKind::kPeriod, "."};
      case '=':
        Advance();
        return Token{TokenKind::kEq, "="};
      case '!':
        Advance();
        if (Match('=')) return Token{TokenKind::kNeq, "!="};
        return Token{TokenKind::kBang, "!"};
      case ':':
        Advance();
        if (Match('-')) return Token{TokenKind::kArrow, ":-"};
        return Error("expected '-' after ':'");
      case '+':
        Advance();
        if (Match('+')) return Token{TokenKind::kConcat, "++"};
        return Error("expected '+' after '+'");
      case '-':
        if (Peek(1) == '-' && Peek(2) == '-') {
          Advance();
          Advance();
          Advance();
          return Token{TokenKind::kStratumSep, "---"};
        }
        return Error("unexpected '-'");
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  DiagnosticList* diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source,
                                    DiagnosticList* diags) {
  return Scanner(source, diags).Run();
}

}  // namespace seqdl
