#include "src/syntax/ast.h"

#include <algorithm>
#include <cassert>

namespace seqdl {

ExprItem ExprItem::Const(Value v) {
  assert(v.is_atom() && "packed constants must use ExprItem::Pack");
  ExprItem it;
  it.kind = Kind::kConst;
  it.atom = v;
  return it;
}

ExprItem ExprItem::AtomVar(VarId v) {
  ExprItem it;
  it.kind = Kind::kAtomVar;
  it.var = v;
  return it;
}

ExprItem ExprItem::PathVar(VarId v) {
  ExprItem it;
  it.kind = Kind::kPathVar;
  it.var = v;
  return it;
}

ExprItem ExprItem::Pack(PathExpr inner) {
  ExprItem it;
  it.kind = Kind::kPack;
  it.pack = std::make_shared<const PathExpr>(std::move(inner));
  return it;
}

bool operator==(const ExprItem& a, const ExprItem& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprItem::Kind::kConst:
      return a.atom == b.atom;
    case ExprItem::Kind::kAtomVar:
    case ExprItem::Kind::kPathVar:
      return a.var == b.var;
    case ExprItem::Kind::kPack:
      return *a.pack == *b.pack;
  }
  return false;
}

bool PathExpr::IsGround() const {
  for (const ExprItem& it : items) {
    if (it.is_var()) return false;
    if (it.kind == ExprItem::Kind::kPack && !it.pack->IsGround()) return false;
  }
  return true;
}

bool PathExpr::HasPacking() const {
  for (const ExprItem& it : items) {
    if (it.kind == ExprItem::Kind::kPack) return true;
  }
  return false;
}

PathExpr ConcatExpr(const PathExpr& a, const PathExpr& b) {
  PathExpr out;
  out.items.reserve(a.items.size() + b.items.size());
  out.items.insert(out.items.end(), a.items.begin(), a.items.end());
  out.items.insert(out.items.end(), b.items.begin(), b.items.end());
  return out;
}

PathExpr ConcatExprs(const std::vector<PathExpr>& parts) {
  PathExpr out;
  for (const PathExpr& p : parts) {
    out.items.insert(out.items.end(), p.items.begin(), p.items.end());
  }
  return out;
}

PathExpr ConstExpr(Value atom) {
  return PathExpr({ExprItem::Const(atom)});
}

PathExpr VarExpr(const Universe& u, VarId v) {
  if (u.VarKindOf(v) == VarKind::kAtomic) {
    return PathExpr({ExprItem::AtomVar(v)});
  }
  return PathExpr({ExprItem::PathVar(v)});
}

PathExpr PackExpr(PathExpr inner) {
  return PathExpr({ExprItem::Pack(std::move(inner))});
}

PathExpr ExprOfPath(const Universe& u, PathId p) {
  PathExpr out;
  for (Value v : u.GetPath(p)) {
    if (v.is_atom()) {
      out.items.push_back(ExprItem::Const(v));
    } else {
      out.items.push_back(ExprItem::Pack(ExprOfPath(u, v.packed_path())));
    }
  }
  return out;
}

namespace {
void CollectVarsInto(const PathExpr& e, std::vector<VarId>* out,
                     std::set<VarId>* seen) {
  for (const ExprItem& it : e.items) {
    if (it.is_var()) {
      if (seen->insert(it.var).second) out->push_back(it.var);
    } else if (it.kind == ExprItem::Kind::kPack) {
      CollectVarsInto(*it.pack, out, seen);
    }
  }
}
}  // namespace

void CollectVars(const PathExpr& e, std::vector<VarId>* out) {
  std::set<VarId> seen(out->begin(), out->end());
  CollectVarsInto(e, out, &seen);
}

std::set<VarId> VarSet(const PathExpr& e) {
  std::vector<VarId> vars;
  CollectVars(e, &vars);
  return std::set<VarId>(vars.begin(), vars.end());
}

Result<PathId> EvalGroundExpr(Universe& u, const PathExpr& e) {
  std::vector<Value> values;
  for (const ExprItem& it : e.items) {
    switch (it.kind) {
      case ExprItem::Kind::kConst:
        values.push_back(it.atom);
        break;
      case ExprItem::Kind::kPack: {
        SEQDL_ASSIGN_OR_RETURN(PathId inner, EvalGroundExpr(u, *it.pack));
        values.push_back(Value::Packed(inner));
        break;
      }
      case ExprItem::Kind::kAtomVar:
      case ExprItem::Kind::kPathVar:
        return Status::InvalidArgument(
            "EvalGroundExpr: expression contains variable " +
            u.VarName(it.var));
    }
  }
  return u.InternPath(values);
}

PathExpr SubstituteExpr(const PathExpr& e, const ExprSubst& subst) {
  PathExpr out;
  for (const ExprItem& it : e.items) {
    if (it.is_var()) {
      auto found = subst.find(it.var);
      if (found == subst.end()) {
        out.items.push_back(it);
      } else {
        const PathExpr& image = found->second;
        // An atomic variable must map to a single atom-valued item; a path
        // variable's image is spliced in place (associativity).
        assert(it.kind != ExprItem::Kind::kAtomVar || image.items.size() == 1);
        out.items.insert(out.items.end(), image.items.begin(),
                         image.items.end());
      }
    } else if (it.kind == ExprItem::Kind::kPack) {
      out.items.push_back(ExprItem::Pack(SubstituteExpr(*it.pack, subst)));
    } else {
      out.items.push_back(it);
    }
  }
  return out;
}

Literal Literal::Pred(Predicate p, bool negated) {
  Literal l;
  l.kind = Kind::kPredicate;
  l.negated = negated;
  l.pred = std::move(p);
  return l;
}

Literal Literal::Eq(PathExpr lhs, PathExpr rhs, bool negated) {
  Literal l;
  l.kind = Kind::kEquation;
  l.negated = negated;
  l.lhs = std::move(lhs);
  l.rhs = std::move(rhs);
  return l;
}

bool operator==(const Literal& a, const Literal& b) {
  if (a.kind != b.kind || a.negated != b.negated) return false;
  if (a.kind == Literal::Kind::kPredicate) return a.pred == b.pred;
  return a.lhs == b.lhs && a.rhs == b.rhs;
}

std::vector<const Rule*> Program::AllRules() const {
  std::vector<const Rule*> out;
  for (const Stratum& s : strata) {
    for (const Rule& r : s.rules) out.push_back(&r);
  }
  return out;
}

size_t Program::NumRules() const {
  size_t n = 0;
  for (const Stratum& s : strata) n += s.rules.size();
  return n;
}

std::set<RelId> IdbRels(const Program& p) {
  std::set<RelId> out;
  for (const Rule* r : p.AllRules()) out.insert(r->head.rel);
  return out;
}

std::set<RelId> AllRels(const Program& p) {
  std::set<RelId> out;
  for (const Rule* r : p.AllRules()) {
    out.insert(r->head.rel);
    for (const Literal& l : r->body) {
      if (l.is_predicate()) out.insert(l.pred.rel);
    }
  }
  return out;
}

std::set<RelId> EdbRels(const Program& p) {
  std::set<RelId> all = AllRels(p);
  std::set<RelId> idb = IdbRels(p);
  std::set<RelId> out;
  std::set_difference(all.begin(), all.end(), idb.begin(), idb.end(),
                      std::inserter(out, out.begin()));
  return out;
}

void CollectVars(const Literal& l, std::vector<VarId>* out) {
  if (l.is_predicate()) {
    for (const PathExpr& e : l.pred.args) CollectVars(e, out);
  } else {
    CollectVars(l.lhs, out);
    CollectVars(l.rhs, out);
  }
}

void CollectVars(const Rule& r, std::vector<VarId>* out) {
  for (const PathExpr& e : r.head.args) CollectVars(e, out);
  for (const Literal& l : r.body) CollectVars(l, out);
}

Literal SubstituteLiteral(const Literal& l, const ExprSubst& subst) {
  Literal out = l;
  if (l.is_predicate()) {
    for (PathExpr& e : out.pred.args) e = SubstituteExpr(e, subst);
  } else {
    out.lhs = SubstituteExpr(l.lhs, subst);
    out.rhs = SubstituteExpr(l.rhs, subst);
  }
  return out;
}

Rule SubstituteRule(const Rule& r, const ExprSubst& subst) {
  Rule out;
  out.head = r.head;
  for (PathExpr& e : out.head.args) e = SubstituteExpr(e, subst);
  for (const Literal& l : r.body) {
    out.body.push_back(SubstituteLiteral(l, subst));
  }
  return out;
}

bool RuleHasPacking(const Rule& r) {
  for (const PathExpr& e : r.head.args) {
    if (e.HasPacking()) return true;
  }
  for (const Literal& l : r.body) {
    if (l.is_predicate()) {
      for (const PathExpr& e : l.pred.args) {
        if (e.HasPacking()) return true;
      }
    } else {
      if (l.lhs.HasPacking() || l.rhs.HasPacking()) return true;
    }
  }
  return false;
}

}  // namespace seqdl
