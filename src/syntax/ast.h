// Abstract syntax of Sequence Datalog (paper §2.2).
//
// A *path expression* is a (flattened) sequence of items, where an item is
// an atomic constant, an atomic variable @x, a path variable $x, or a packed
// subexpression <e>. A *predicate* applies a relation name to path
// expressions; an *equation* equates two path expressions. Literals are
// possibly negated atoms; rules are head <- body; programs are sequences of
// strata.
#ifndef SEQDL_SYNTAX_AST_H_
#define SEQDL_SYNTAX_AST_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/source_span.h"
#include "src/base/status.h"
#include "src/term/universe.h"
#include "src/term/value.h"

namespace seqdl {

struct PathExpr;

/// One item of a path expression.
struct ExprItem {
  enum class Kind : uint8_t { kConst, kAtomVar, kPathVar, kPack };

  Kind kind = Kind::kConst;
  Value atom;  // kConst: an atomic value (always Value::Atom).
  VarId var = 0;  // kAtomVar / kPathVar
  std::shared_ptr<const PathExpr> pack;  // kPack

  static ExprItem Const(Value v);
  static ExprItem AtomVar(VarId v);
  static ExprItem PathVar(VarId v);
  static ExprItem Pack(PathExpr inner);

  bool is_var() const {
    return kind == Kind::kAtomVar || kind == Kind::kPathVar;
  }

  friend bool operator==(const ExprItem& a, const ExprItem& b);
  friend bool operator!=(const ExprItem& a, const ExprItem& b) {
    return !(a == b);
  }
};

/// A path expression: a flat sequence of items (concatenation is
/// associative, so nesting of concatenations is never represented).
struct PathExpr {
  std::vector<ExprItem> items;

  PathExpr() = default;
  explicit PathExpr(std::vector<ExprItem> its) : items(std::move(its)) {}

  bool empty() const { return items.empty(); }
  size_t size() const { return items.size(); }

  /// True iff no variable occurs (at any packing depth).
  bool IsGround() const;
  /// True iff a <...> item occurs (at any depth).
  bool HasPacking() const;
  /// True iff the expression is exactly one variable item.
  bool IsSingleVar() const {
    return items.size() == 1 && items[0].is_var();
  }

  friend bool operator==(const PathExpr& a, const PathExpr& b) {
    return a.items == b.items;
  }
  friend bool operator!=(const PathExpr& a, const PathExpr& b) {
    return !(a == b);
  }
};

/// e1 · e2 (flattening).
PathExpr ConcatExpr(const PathExpr& a, const PathExpr& b);
/// Concatenation of many expressions.
PathExpr ConcatExprs(const std::vector<PathExpr>& parts);
/// Single-item expressions.
PathExpr ConstExpr(Value atom);
PathExpr VarExpr(const Universe& u, VarId v);
PathExpr PackExpr(PathExpr inner);
/// The ground expression denoting an interned path (packs become <...>).
PathExpr ExprOfPath(const Universe& u, PathId p);

/// Collects all variables of `e` (at any depth) into `out`, in order of
/// first occurrence, without duplicates.
void CollectVars(const PathExpr& e, std::vector<VarId>* out);
/// Convenience: set form.
std::set<VarId> VarSet(const PathExpr& e);

/// Evaluates a ground expression to an interned path.
Result<PathId> EvalGroundExpr(Universe& u, const PathExpr& e);

/// A substitution mapping variables to path expressions. Atomic variables
/// may only map to a single atomic-constant or atomic-variable item.
using ExprSubst = std::unordered_map<VarId, PathExpr>;

/// Applies `subst` to `e` (splicing path-variable images in place).
PathExpr SubstituteExpr(const PathExpr& e, const ExprSubst& subst);

/// P(e1, ..., en). Arity 0 predicates have no arguments.
struct Predicate {
  RelId rel = 0;
  std::vector<PathExpr> args;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.rel == b.rel && a.args == b.args;
  }
};

/// A body literal: possibly negated predicate or equation.
struct Literal {
  enum class Kind : uint8_t { kPredicate, kEquation };

  Kind kind = Kind::kPredicate;
  bool negated = false;
  Predicate pred;      // kPredicate
  PathExpr lhs, rhs;   // kEquation

  static Literal Pred(Predicate p, bool negated = false);
  static Literal Eq(PathExpr lhs, PathExpr rhs, bool negated = false);

  bool is_predicate() const { return kind == Kind::kPredicate; }
  bool is_equation() const { return kind == Kind::kEquation; }

  friend bool operator==(const Literal& a, const Literal& b);
};

/// H <- B.
struct Rule {
  Predicate head;
  std::vector<Literal> body;
  /// Where the rule sits in the source text it was parsed from (start of
  /// the head through the terminating '.'). Invalid (line 0) for rules
  /// built programmatically — diagnostics then render without a
  /// location. Ignored by operator-free comparisons elsewhere (rules
  /// have no operator==).
  SourceSpan span;
};

/// A set of rules evaluated jointly to a fixpoint.
struct Stratum {
  std::vector<Rule> rules;
};

/// A finite sequence of strata (paper §2.2). Negation must be stratified;
/// analysis/safety.h validates this.
struct Program {
  std::vector<Stratum> strata;

  /// Flat view over all rules in stratum order.
  std::vector<const Rule*> AllRules() const;
  size_t NumRules() const;
};

/// Relation names appearing in some head (IDB) of the whole program.
std::set<RelId> IdbRels(const Program& p);
/// Relation names appearing anywhere but in no head (EDB).
std::set<RelId> EdbRels(const Program& p);
/// All relation names used by the program.
std::set<RelId> AllRels(const Program& p);

/// Variables occurring anywhere in the literal / rule.
void CollectVars(const Literal& l, std::vector<VarId>* out);
void CollectVars(const Rule& r, std::vector<VarId>* out);

/// Applies a substitution to every expression of a literal / rule.
Literal SubstituteLiteral(const Literal& l, const ExprSubst& subst);
Rule SubstituteRule(const Rule& r, const ExprSubst& subst);

/// True iff any expression in the rule (head or body) uses packing.
bool RuleHasPacking(const Rule& r);

}  // namespace seqdl

#endif  // SEQDL_SYNTAX_AST_H_
