#include "src/syntax/parser.h"

#include <vector>

#include "src/syntax/lexer.h"

namespace seqdl {

namespace {

class Parser {
 public:
  Parser(Universe& u, std::vector<Token> tokens,
         DiagnosticList* diags = nullptr)
      : u_(u), tokens_(std::move(tokens)), diags_(diags) {}

  Result<Program> ParseProgram() {
    Program p;
    p.strata.emplace_back();
    while (!Check(TokenKind::kEnd)) {
      if (Match(TokenKind::kStratumSep)) {
        p.strata.emplace_back();
        continue;
      }
      SEQDL_ASSIGN_OR_RETURN(Rule r, ParseRule());
      p.strata.back().rules.push_back(std::move(r));
    }
    // Drop empty strata (e.g. a trailing '---').
    std::vector<Stratum> kept;
    for (Stratum& s : p.strata) {
      if (!s.rules.empty()) kept.push_back(std::move(s));
    }
    if (kept.empty()) kept.emplace_back();
    p.strata = std::move(kept);
    return p;
  }

  Result<Rule> ParseRule() {
    Rule r;
    const Token& start = Peek();
    r.span.line = start.line;
    r.span.col = start.col;
    SEQDL_ASSIGN_OR_RETURN(r.head, ParsePredicate());
    if (Match(TokenKind::kArrow)) {
      // An empty body before '.' is allowed (e.g. "A <- ." from Lemma 7.2
      // form 6); otherwise literals separated by commas.
      if (!Check(TokenKind::kPeriod)) {
        while (true) {
          SEQDL_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
          r.body.push_back(std::move(lit));
          if (!Match(TokenKind::kComma)) break;
        }
      }
    }
    const Token& period = Peek();
    SEQDL_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
    r.span.end_line = period.line;
    r.span.end_col = period.col + 1;
    return r;
  }

  Result<PathExpr> ParsePathExprTop() {
    SEQDL_ASSIGN_OR_RETURN(PathExpr e, ParsePathExpr());
    SEQDL_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return e;
  }

  Status ExpectEnd() { return Expect(TokenKind::kEnd); }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind k) const { return Peek().kind == k; }
  bool Match(TokenKind k) {
    if (Check(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token Take() { return tokens_[pos_++]; }

  Status Expect(TokenKind k) {
    if (Match(k)) return Status::OK();
    return ErrorHere(std::string("expected ") + TokenKindToString(k) +
                     ", found " + TokenKindToString(Peek().kind));
  }

  Status ErrorHere(const std::string& msg) const {
    const Token& t = Peek();
    if (diags_ != nullptr) {
      int length = t.text.empty() ? 1 : static_cast<int>(t.text.size());
      diags_->Add(Diagnostic::Error(
          "SD002", SourceSpan::At(t.line, t.col, length), msg));
    }
    return Status::InvalidArgument("parse error at " + std::to_string(t.line) +
                                   ":" + std::to_string(t.col) + ": " + msg);
  }

  Result<Predicate> ParsePredicate() {
    if (!Check(TokenKind::kIdent)) {
      return ErrorHere("expected relation name");
    }
    std::string name = Take().text;
    Predicate pred;
    if (Match(TokenKind::kLParen)) {
      if (!Match(TokenKind::kRParen)) {
        while (true) {
          SEQDL_ASSIGN_OR_RETURN(PathExpr e, ParsePathExpr());
          pred.args.push_back(std::move(e));
          if (!Match(TokenKind::kComma)) break;
        }
        SEQDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      }
    }
    SEQDL_ASSIGN_OR_RETURN(
        pred.rel, u_.InternRel(name, static_cast<uint32_t>(pred.args.size())));
    return pred;
  }

  Result<Literal> ParseLiteral() {
    bool negated = false;
    if (Match(TokenKind::kBang) || Match(TokenKind::kNot)) negated = true;

    // Disambiguate predicate vs equation. "Ident(" is always a predicate
    // application; a bare identifier followed by '=' / '!=' / concatenation
    // starts an equation; otherwise a bare identifier is an arity-0
    // predicate.
    bool is_predicate = false;
    if (Check(TokenKind::kIdent)) {
      TokenKind next = Peek(1).kind;
      is_predicate = next == TokenKind::kLParen ||
                     (next != TokenKind::kEq && next != TokenKind::kNeq &&
                      next != TokenKind::kConcat);
    }
    if (is_predicate) {
      SEQDL_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
      return Literal::Pred(std::move(p), negated);
    }

    SEQDL_ASSIGN_OR_RETURN(PathExpr lhs, ParsePathExpr());
    bool neq;
    if (Match(TokenKind::kEq)) {
      neq = false;
    } else if (Match(TokenKind::kNeq)) {
      neq = true;
    } else {
      return ErrorHere("expected '=' or '!=' in equation");
    }
    if (neq && negated) {
      return ErrorHere("cannot negate a nonequality ('!' with '!=')");
    }
    SEQDL_ASSIGN_OR_RETURN(PathExpr rhs, ParsePathExpr());
    return Literal::Eq(std::move(lhs), std::move(rhs), negated || neq);
  }

  Result<PathExpr> ParsePathExpr() {
    PathExpr out;
    SEQDL_RETURN_IF_ERROR(ParseItemInto(&out));
    while (Match(TokenKind::kConcat)) {
      SEQDL_RETURN_IF_ERROR(ParseItemInto(&out));
    }
    return out;
  }

  // Parses one item and appends it to `out` ('eps' and '()' contribute no
  // items — the empty path is the empty item sequence).
  Status ParseItemInto(PathExpr* out) {
    if (Match(TokenKind::kEps)) return Status::OK();
    if (Check(TokenKind::kLParen) && Peek(1).kind == TokenKind::kRParen) {
      ++pos_;
      ++pos_;
      return Status::OK();
    }
    if (Check(TokenKind::kIdent)) {
      Token t = Take();
      out->items.push_back(
          ExprItem::Const(Value::Atom(u_.InternAtom(t.text))));
      return Status::OK();
    }
    if (Check(TokenKind::kAtomVar)) {
      Token t = Take();
      out->items.push_back(
          ExprItem::AtomVar(u_.InternVar(VarKind::kAtomic, t.text)));
      return Status::OK();
    }
    if (Check(TokenKind::kPathVar)) {
      Token t = Take();
      out->items.push_back(
          ExprItem::PathVar(u_.InternVar(VarKind::kPath, t.text)));
      return Status::OK();
    }
    if (Match(TokenKind::kLAngle)) {
      PathExpr inner;
      if (!Check(TokenKind::kRAngle)) {
        SEQDL_ASSIGN_OR_RETURN(inner, ParsePathExpr());
      }
      SEQDL_RETURN_IF_ERROR(Expect(TokenKind::kRAngle));
      out->items.push_back(ExprItem::Pack(std::move(inner)));
      return Status::OK();
    }
    return ErrorHere("expected path expression item, found " +
                     std::string(TokenKindToString(Peek().kind)));
  }

  Universe& u_;
  std::vector<Token> tokens_;
  DiagnosticList* diags_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(Universe& u, std::string_view source) {
  SEQDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(u, std::move(tokens)).ParseProgram();
}

Result<Program> ParseProgram(Universe& u, std::string_view source,
                             DiagnosticList* diags) {
  SEQDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source, diags));
  return Parser(u, std::move(tokens), diags).ParseProgram();
}

Result<Rule> ParseRule(Universe& u, std::string_view source) {
  SEQDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser p(u, std::move(tokens));
  SEQDL_ASSIGN_OR_RETURN(Rule r, p.ParseRule());
  SEQDL_RETURN_IF_ERROR(p.ExpectEnd());
  return r;
}

Result<PathExpr> ParsePathExpr(Universe& u, std::string_view source) {
  SEQDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(u, std::move(tokens)).ParsePathExprTop();
}

}  // namespace seqdl
