// Pretty-printer for seqdl ASTs. Output re-parses to an equal AST
// (round-trip property, tested in tests/syntax_test.cc).
#ifndef SEQDL_SYNTAX_PRINTER_H_
#define SEQDL_SYNTAX_PRINTER_H_

#include <string>

#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

std::string FormatExpr(const Universe& u, const PathExpr& e);
std::string FormatPredicate(const Universe& u, const Predicate& p);
std::string FormatLiteral(const Universe& u, const Literal& l);
std::string FormatRule(const Universe& u, const Rule& r);
std::string FormatProgram(const Universe& u, const Program& p);

}  // namespace seqdl

#endif  // SEQDL_SYNTAX_PRINTER_H_
