// Tokenizer for the seqdl surface syntax.
//
//   program   := stratum ('---' stratum)*
//   rule      := predicate [ ('<-' | ':-') body ] '.'
//   body      := literal (',' literal)*
//   literal   := [ '!' | 'not' ] (predicate | equation)
//   equation  := pathexpr ('=' | '!=') pathexpr
//   predicate := IDENT [ '(' pathexpr (',' pathexpr)* ')' ]
//   pathexpr  := item (('·' | '++') item)*
//   item      := IDENT | NUMBER | STRING | '@'IDENT | '$'IDENT
//              | '<' pathexpr '>' | 'eps' | '(' ')'
//
// Comments run from '%', '#', or '//' to end of line.
#ifndef SEQDL_SYNTAX_LEXER_H_
#define SEQDL_SYNTAX_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/base/status.h"

namespace seqdl {

enum class TokenKind {
  kIdent,       // atom / relation name (also numbers and quoted strings)
  kAtomVar,     // @x
  kPathVar,     // $x
  kLParen,
  kRParen,
  kLAngle,      // <
  kRAngle,      // >
  kComma,
  kPeriod,      // rule terminator
  kConcat,      // '·' or '++'
  kEq,          // =
  kNeq,         // !=
  kBang,        // !
  kNot,         // keyword 'not'
  kEps,         // keyword 'eps'
  kArrow,       // '<-' or ':-'
  kStratumSep,  // ---
  kEnd,
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;  // identifier / variable name without sigil
  int line = 1;
  int col = 1;
};

/// Tokenizes `source`; on success the result ends with a kEnd token.
/// When `diags` is non-null, a lex error is also appended to it as a
/// structured SD001 diagnostic with the precise source span (the
/// returned Status carries the same message either way).
Result<std::vector<Token>> Tokenize(std::string_view source,
                                    DiagnosticList* diags = nullptr);

}  // namespace seqdl

#endif  // SEQDL_SYNTAX_LEXER_H_
