#include "src/syntax/builder.h"

#include <cstdlib>

namespace seqdl {

PathExpr ProgramBuilder::A(std::string_view name) const {
  return ConstExpr(Value::Atom(u_.InternAtom(name)));
}

PathExpr ProgramBuilder::PV(std::string_view name) const {
  return PathExpr({ExprItem::PathVar(u_.InternVar(VarKind::kPath, name))});
}

PathExpr ProgramBuilder::AV(std::string_view name) const {
  return PathExpr({ExprItem::AtomVar(u_.InternVar(VarKind::kAtomic, name))});
}

PathExpr ProgramBuilder::Cat(const std::vector<PathExpr>& parts) const {
  return ConcatExprs(parts);
}

PathExpr ProgramBuilder::Pk(PathExpr inner) const {
  return PackExpr(std::move(inner));
}

Predicate ProgramBuilder::P(std::string_view rel,
                            std::vector<PathExpr> args) const {
  Result<RelId> id = u_.InternRel(rel, static_cast<uint32_t>(args.size()));
  if (!id.ok()) {
    // Builder programs are static; an arity conflict is a programming error.
    std::abort();
  }
  Predicate p;
  p.rel = *id;
  p.args = std::move(args);
  return p;
}

}  // namespace seqdl
