#include "src/syntax/printer.h"

namespace seqdl {

namespace {
std::string FormatItem(const Universe& u, const ExprItem& it) {
  switch (it.kind) {
    case ExprItem::Kind::kConst:
      return u.AtomName(it.atom.atom());
    case ExprItem::Kind::kAtomVar:
      return "@" + u.VarName(it.var);
    case ExprItem::Kind::kPathVar:
      return "$" + u.VarName(it.var);
    case ExprItem::Kind::kPack:
      return "<" + FormatExpr(u, *it.pack) + ">";
  }
  return "?";
}
}  // namespace

std::string FormatExpr(const Universe& u, const PathExpr& e) {
  if (e.items.empty()) return "eps";
  std::string out;
  for (size_t i = 0; i < e.items.size(); ++i) {
    if (i > 0) out += "·";
    out += FormatItem(u, e.items[i]);
  }
  return out;
}

std::string FormatPredicate(const Universe& u, const Predicate& p) {
  std::string out = u.RelName(p.rel);
  if (!p.args.empty()) {
    out += "(";
    for (size_t i = 0; i < p.args.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatExpr(u, p.args[i]);
    }
    out += ")";
  }
  return out;
}

std::string FormatLiteral(const Universe& u, const Literal& l) {
  if (l.is_predicate()) {
    std::string out = l.negated ? "!" : "";
    return out + FormatPredicate(u, l.pred);
  }
  const char* op = l.negated ? " != " : " = ";
  return FormatExpr(u, l.lhs) + op + FormatExpr(u, l.rhs);
}

std::string FormatRule(const Universe& u, const Rule& r) {
  std::string out = FormatPredicate(u, r.head);
  if (!r.body.empty()) {
    out += " <- ";
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatLiteral(u, r.body[i]);
    }
  }
  out += ".";
  return out;
}

std::string FormatProgram(const Universe& u, const Program& p) {
  std::string out;
  for (size_t s = 0; s < p.strata.size(); ++s) {
    if (s > 0) out += "---\n";
    for (const Rule& r : p.strata[s].rules) {
      out += FormatRule(u, r);
      out += "\n";
    }
  }
  return out;
}

}  // namespace seqdl
