// Thin fluent helper for constructing seqdl ASTs from C++ (used by the
// transformation passes, the query corpus, and tests). For anything
// human-authored, prefer ParseProgram.
#ifndef SEQDL_SYNTAX_BUILDER_H_
#define SEQDL_SYNTAX_BUILDER_H_

#include <string_view>
#include <vector>

#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(Universe& u) : u_(u) {}

  /// Atomic constant expression.
  PathExpr A(std::string_view name) const;
  /// Path variable expression ($name).
  PathExpr PV(std::string_view name) const;
  /// Atomic variable expression (@name).
  PathExpr AV(std::string_view name) const;
  /// Empty path expression.
  PathExpr Eps() const { return PathExpr(); }
  /// Concatenation.
  PathExpr Cat(const std::vector<PathExpr>& parts) const;
  /// Packed expression <e>.
  PathExpr Pk(PathExpr inner) const;

  /// Predicate over a relation interned with arity = args.size(). Aborts on
  /// arity conflicts — builder call sites are compile-time-known programs.
  Predicate P(std::string_view rel, std::vector<PathExpr> args) const;

  Literal Lit(Predicate p) const { return Literal::Pred(std::move(p)); }
  Literal NotLit(Predicate p) const {
    return Literal::Pred(std::move(p), /*negated=*/true);
  }
  Literal Eq(PathExpr a, PathExpr b) const {
    return Literal::Eq(std::move(a), std::move(b));
  }
  Literal Neq(PathExpr a, PathExpr b) const {
    return Literal::Eq(std::move(a), std::move(b), /*negated=*/true);
  }

  Rule R(Predicate head, std::vector<Literal> body) const {
    return Rule{std::move(head), std::move(body), SourceSpan()};
  }

  Universe& universe() const { return u_; }

 private:
  Universe& u_;
};

}  // namespace seqdl

#endif  // SEQDL_SYNTAX_BUILDER_H_
