#include "src/queries/regex.h"

#include <algorithm>
#include <set>
#include <vector>

#include "src/syntax/builder.h"

namespace seqdl {

namespace {

// Thompson NFA with ε-transitions; states are indices.
struct EpsilonNfa {
  struct Edge {
    int to;
    int letter;  // -1 for ε
  };
  std::vector<std::vector<Edge>> edges;

  int NewState() {
    edges.emplace_back();
    return static_cast<int>(edges.size()) - 1;
  }
  void Add(int from, int to, int letter) {
    edges[static_cast<size_t>(from)].push_back({to, letter});
  }
};

// A sub-automaton with one entry and one exit state.
struct Frag {
  int start;
  int accept;
};

class RegexParser {
 public:
  RegexParser(const std::string& pattern, EpsilonNfa* nfa)
      : pattern_(pattern), nfa_(nfa) {}

  Result<Frag> Parse() {
    SEQDL_ASSIGN_OR_RETURN(Frag f, Alternation());
    if (pos_ != pattern_.size()) {
      return Status::InvalidArgument("regex: unexpected '" +
                                     std::string(1, pattern_[pos_]) +
                                     "' at position " + std::to_string(pos_));
    }
    return f;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }

  Result<Frag> Alternation() {
    SEQDL_ASSIGN_OR_RETURN(Frag f, Concatenation());
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      SEQDL_ASSIGN_OR_RETURN(Frag g, Concatenation());
      int s = nfa_->NewState(), a = nfa_->NewState();
      nfa_->Add(s, f.start, -1);
      nfa_->Add(s, g.start, -1);
      nfa_->Add(f.accept, a, -1);
      nfa_->Add(g.accept, a, -1);
      f = {s, a};
    }
    return f;
  }

  Result<Frag> Concatenation() {
    SEQDL_ASSIGN_OR_RETURN(Frag f, Postfix());
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      SEQDL_ASSIGN_OR_RETURN(Frag g, Postfix());
      nfa_->Add(f.accept, g.start, -1);
      f = {f.start, g.accept};
    }
    return f;
  }

  Result<Frag> Postfix() {
    SEQDL_ASSIGN_OR_RETURN(Frag f, Atom());
    while (!AtEnd() && (Peek() == '*' || Peek() == '+' || Peek() == '?')) {
      char op = pattern_[pos_++];
      int s = nfa_->NewState(), a = nfa_->NewState();
      nfa_->Add(s, f.start, -1);
      nfa_->Add(f.accept, a, -1);
      if (op == '*' || op == '?') nfa_->Add(s, a, -1);
      if (op == '*' || op == '+') nfa_->Add(f.accept, f.start, -1);
      f = {s, a};
    }
    return f;
  }

  Result<Frag> Atom() {
    if (AtEnd()) return Status::InvalidArgument("regex: unexpected end");
    char c = pattern_[pos_];
    if (c == '(') {
      ++pos_;
      SEQDL_ASSIGN_OR_RETURN(Frag f, Alternation());
      if (AtEnd() || Peek() != ')') {
        return Status::InvalidArgument("regex: missing ')'");
      }
      ++pos_;
      return f;
    }
    if (c >= 'a' && c <= 'z') {
      ++pos_;
      int s = nfa_->NewState(), a = nfa_->NewState();
      nfa_->Add(s, a, c - 'a');
      return Frag{s, a};
    }
    return Status::InvalidArgument(std::string("regex: unexpected '") + c +
                                   "'");
  }

  const std::string& pattern_;
  EpsilonNfa* nfa_;
  size_t pos_ = 0;
};

std::set<int> EpsilonClosure(const EpsilonNfa& nfa, int state) {
  std::set<int> closure = {state};
  std::vector<int> stack = {state};
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (const EpsilonNfa::Edge& e : nfa.edges[static_cast<size_t>(s)]) {
      if (e.letter == -1 && closure.insert(e.to).second) {
        stack.push_back(e.to);
      }
    }
  }
  return closure;
}

}  // namespace

Result<Nfa> CompileRegex(const std::string& pattern) {
  size_t alphabet = 0;
  for (char c : pattern) {
    if (c >= 'a' && c <= 'z') {
      alphabet = std::max(alphabet, static_cast<size_t>(c - 'a') + 1);
    }
  }
  if (alphabet == 0) alphabet = 1;  // e.g. pattern "()" or "" variants

  EpsilonNfa enfa;
  RegexParser parser(pattern, &enfa);
  SEQDL_ASSIGN_OR_RETURN(Frag frag, parser.Parse());

  // ε-elimination: state q has letter-l edge to q' iff some state in
  // ε-closure(q) has a letter-l edge to q''. q is accepting iff its
  // closure contains the fragment's accept state.
  size_t n = enfa.edges.size();
  Nfa out;
  out.num_states = n;
  out.alphabet = alphabet;
  out.initial.assign(n, false);
  out.accepting.assign(n, false);
  out.delta.assign(n, std::vector<std::vector<uint32_t>>(alphabet));
  out.initial[static_cast<size_t>(frag.start)] = true;
  for (size_t q = 0; q < n; ++q) {
    std::set<int> closure = EpsilonClosure(enfa, static_cast<int>(q));
    if (closure.count(frag.accept)) out.accepting[q] = true;
    for (int c : closure) {
      for (const EpsilonNfa::Edge& e : enfa.edges[static_cast<size_t>(c)]) {
        if (e.letter < 0) continue;
        // Land in the ε-closure of the target so acceptance after the last
        // letter is detected; it suffices to add the direct target since
        // the accepting flags already account for closures.
        out.delta[q][static_cast<size_t>(e.letter)].push_back(
            static_cast<uint32_t>(e.to));
      }
    }
  }
  // Deduplicate transition lists.
  for (auto& per_state : out.delta) {
    for (auto& targets : per_state) {
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
    }
  }
  return out;
}

Result<RegexQuery> RegexToDatalog(Universe& u, const std::string& pattern) {
  SEQDL_ASSIGN_OR_RETURN(Nfa nfa, CompileRegex(pattern));

  ProgramBuilder b(u);
  // Fresh relation names so multiple matchers can coexist in one universe.
  RelId input = u.FreshRel("ReStr", 1);
  RelId n_rel = u.FreshRel("ReInit", 1);
  RelId d_rel = u.FreshRel("ReDelta", 3);
  RelId f_rel = u.FreshRel("ReFinal", 1);
  RelId s_rel = u.FreshRel("ReState", 2);
  RelId out_rel = u.FreshRel("ReMatch", 1);

  Program p;
  p.strata.emplace_back();
  std::vector<Rule>& rules = p.strata.back().rules;

  auto state_expr = [&](size_t q) {
    return b.A("req" + std::to_string(q));
  };
  auto letter_expr = [&](size_t l) { return b.A(LetterName(l)); };

  // Automaton facts.
  for (size_t q = 0; q < nfa.num_states; ++q) {
    if (nfa.initial[q]) rules.push_back(b.R({n_rel, {state_expr(q)}}, {}));
    if (nfa.accepting[q]) rules.push_back(b.R({f_rel, {state_expr(q)}}, {}));
    for (size_t l = 0; l < nfa.alphabet; ++l) {
      for (uint32_t q2 : nfa.delta[q][l]) {
        rules.push_back(b.R(
            {d_rel, {state_expr(q), letter_expr(l), state_expr(q2)}}, {}));
      }
    }
  }

  // The Example 2.1 acceptance program over the fresh names:
  //   S(@q·$x, ϵ)      <- R($x), N(@q).
  //   S(@q2·$y, $z·@a) <- S(@q1·@a·$y, $z), D(@q1, @a, @q2).
  //   A($x)            <- S(@q, $x), F(@q).
  PathExpr x = b.PV("re_x"), y = b.PV("re_y"), z = b.PV("re_z");
  PathExpr q0 = b.AV("re_q"), q1 = b.AV("re_q1"), q2 = b.AV("re_q2");
  PathExpr a = b.AV("re_a");
  rules.push_back(b.R({s_rel, {b.Cat({q0, x}), b.Eps()}},
                      {b.Lit({input, {x}}), b.Lit({n_rel, {q0}})}));
  rules.push_back(
      b.R({s_rel, {b.Cat({q2, y}), b.Cat({z, a})}},
          {b.Lit({s_rel, {b.Cat({q1, a, y}), z}}),
           b.Lit({d_rel, {q1, a, q2}})}));
  rules.push_back(b.R({out_rel, {x}},
                      {b.Lit({s_rel, {q0, x}}), b.Lit({f_rel, {q0}})}));

  return RegexQuery{std::move(p), input, out_rel};
}

}  // namespace seqdl
