// Regular-expression matching compiled to Sequence Datalog. The paper
// notes (§1, discussing document spanners) that built-in regular
// expression matching "may be viewed as very useful syntactic sugar, as
// [it is] also expressible using recursion". This module makes that
// concrete: a regex is compiled by Thompson construction to an ε-free NFA,
// which is embedded as facts into the recursive acceptance program of
// Example 2.1.
//
// Supported syntax: literal letters 'a'..'z', concatenation, alternation
// '|', grouping '(...)', and the postfix operators '*', '+', '?'.
#ifndef SEQDL_QUERIES_REGEX_H_
#define SEQDL_QUERIES_REGEX_H_

#include <string>

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"
#include "src/workload/generators.h"

namespace seqdl {

/// Compiles `pattern` to an ε-free NFA over the letters that occur in it
/// (alphabet indices are letter - 'a').
Result<Nfa> CompileRegex(const std::string& pattern);

/// A regex matcher packaged as a Sequence Datalog query: the program
/// embeds the automaton as facts and accepts into `output` every string
/// of `input` matched by the pattern.
struct RegexQuery {
  Program program;
  RelId input;   // unary relation holding candidate strings
  RelId output;  // unary relation of matched strings
};

Result<RegexQuery> RegexToDatalog(Universe& u, const std::string& pattern);

}  // namespace seqdl

#endif  // SEQDL_QUERIES_REGEX_H_
