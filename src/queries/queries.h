// The paper's example programs as a reusable corpus. Each entry carries the
// program text (in seqdl surface syntax), the output relation, and the
// paper reference. Programs are parsed into a caller-provided Universe.
#ifndef SEQDL_QUERIES_QUERIES_H_
#define SEQDL_QUERIES_QUERIES_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct PaperQuery {
  std::string id;           // e.g. "ex21_nfa"
  std::string reference;    // e.g. "Example 2.1"
  std::string description;
  std::string program_text;
  std::string output_rel;   // name of the output relation
  bool terminating = true;  // Example 2.3 is the deliberate exception
};

/// All corpus entries.
const std::vector<PaperQuery>& PaperCorpus();

/// Lookup by id; kNotFound if absent.
Result<const PaperQuery*> FindPaperQuery(const std::string& id);

/// Parses the program of a corpus entry into `u` and resolves its output
/// relation.
struct ParsedQuery {
  Program program;
  RelId output;
};
Result<ParsedQuery> ParsePaperQuery(Universe& u, const PaperQuery& q);
Result<ParsedQuery> ParsePaperQuery(Universe& u, const std::string& id);

}  // namespace seqdl

#endif  // SEQDL_QUERIES_QUERIES_H_
