#include "src/queries/queries.h"

#include "src/syntax/parser.h"

namespace seqdl {

const std::vector<PaperQuery>& PaperCorpus() {
  static const std::vector<PaperQuery>* corpus = new std::vector<PaperQuery>{
      {"ex21_nfa", "Example 2.1",
       "Strings from R accepted by the NFA (N initial, D transitions, F "
       "final)",
       "S(@q ++ $x, eps) <- R($x), N(@q).\n"
       "S(@q2 ++ $y, $z ++ @a) <- S(@q1 ++ @a ++ $y, $z), D(@q1, @a, @q2).\n"
       "A($x) <- S(@q, $x), F(@q).\n",
       "A"},

      {"ex22_three_occurrences", "Example 2.2",
       "True iff strings from S occur as substrings of strings from R in at "
       "least three different ways (uses packing and nonequalities)",
       "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
       "A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.\n",
       "A"},

      {"ex23_nonterminating", "Example 2.3",
       "A two-rule program that terminates on no instance",
       "T(a).\n"
       "T(a ++ $x) <- T($x).\n",
       "T", /*terminating=*/false},

      {"ex31_only_as_e", "Example 3.1",
       "Paths from R consisting exclusively of a's, via an equation "
       "(fragment {E})",
       "S($x) <- R($x), a ++ $x = $x ++ a.\n",
       "S"},

      {"ex31_only_as_air", "Example 3.1",
       "Paths from R consisting exclusively of a's, via recursion "
       "(fragment {A,I,R})",
       "T($x, $x) <- R($x).\n"
       "T($x, $y) <- T($x, $y ++ a).\n"
       "S($x) <- T($x, eps).\n",
       "S"},

      {"ex43_reverse", "Example 4.3",
       "Reversals of the paths in R (uses arity)",
       "T($x, eps) <- R($x).\n"
       "T($x, $y ++ @u) <- T($x ++ @u, $y).\n"
       "S($x) <- T(eps, $x).\n",
       "S"},

      {"ex43_reverse_noarity", "Example 4.3",
       "Reversals of the paths in R, arity eliminated by hand as in the "
       "paper",
       "T($x ++ a ++ a ++ $x ++ b) <- R($x).\n"
       "T($x ++ a ++ $y ++ @u ++ a ++ $x ++ b ++ $y ++ @u) <- "
       "T($x ++ @u ++ a ++ $y ++ a ++ $x ++ @u ++ b ++ $y).\n"
       "S($x) <- T(a ++ $x ++ a ++ b ++ $x).\n",
       "S"},

      {"ex44_only_as_noeq", "Example 4.4",
       "The only-a's query with its equation eliminated as in the paper",
       "T(a ++ $x, $x) <- R($x).\n"
       "S($x) <- T($x ++ a, $x).\n",
       "S"},

      {"ex46_marked", "Example 4.6",
       "Paths of the form a1...an bn...b1 with ai != bi (negated "
       "equations)",
       "U($x, $x) <- R($x).\n"
       "U($x, $y) <- U($x, @a ++ $y ++ @b), @a != @b.\n"
       "S($x) <- U($x, eps).\n",
       "S"},

      {"squaring", "Theorem 5.3",
       "For R(a^n), outputs a^(n^2) (witness that recursion is primitive)",
       "T(eps, $x, $x) <- R($x).\n"
       "T($y ++ $x, $x, $z) <- T($y, $x, a ++ $z).\n"
       "S($y) <- T($y, $x, eps).\n",
       "S"},

      {"reach_ab", "Section 5.1.1",
       "Boolean reachability of b from a over edges encoded as length-2 "
       "paths",
       "T(@x ++ @y) <- R(@x ++ @y).\n"
       "T(@x ++ @z) <- T(@x ++ @y), R(@y ++ @z).\n"
       "S <- T(a ++ b).\n",
       "S"},

      {"sec52_black", "Section 5.2",
       "Nodes all of whose out-edges lead to black nodes (semipositive-"
       "inexpressible; fragment {I,N})",
       "W(@x) <- R(@x ++ @y), !B(@y).\n"
       "---\n"
       "S(@x) <- R(@x ++ @y), !W(@x).\n",
       "S"},

      {"doubling", "Theorem 4.15",
       "Doubles every path of R (k1...kn -> k1 k1 ... kn kn) without "
       "negation",
       "T(eps, $x) <- R($x).\n"
       "T($x ++ @y ++ @y, $z) <- T($x, @y ++ $z).\n"
       "S($x) <- T($x, eps).\n",
       "S"},

      {"undoubling", "Theorem 4.15",
       "Inverse of the doubling program",
       "T($x, eps) <- R($x).\n"
       "T($x, @y ++ $z) <- T($x ++ @y ++ @y, $z).\n"
       "S($x) <- T(eps, $x).\n",
       "S"},

      {"process_mining", "Introduction",
       "Event logs in which every 'co' (complete order) is eventually "
       "followed by an 'rp' (receive payment)",
       "HasRp($v) <- R($u ++ co ++ $v), $v = $s ++ rp ++ $t.\n"
       "---\n"
       "Bad($x) <- R($x), $x = $u ++ co ++ $v, !HasRp($v).\n"
       "---\n"
       "Good($x) <- R($x), !Bad($x).\n",
       "Good"},

      {"json_sales", "Introduction",
       "Restructures item-year-amount triples (stored as length-3 paths) to "
       "group by year instead of item",
       "ByYear(@y ++ @i ++ @a) <- Sales(@i ++ @y ++ @a).\n",
       "ByYear"},

      {"deep_equal", "Introduction",
       "True iff the two unary relations A0 and B0 hold the same set of "
       "paths",
       "DiffAB <- A0($x), !B0($x).\n"
       "DiffAB <- B0($x), !A0($x).\n"
       "---\n"
       "Equal <- !DiffAB.\n",
       "Equal"},

      {"gcore_common_nodes", "Introduction",
       "Nodes that belong to every path in the stored set of paths P",
       "Occurs(@n ++ $p) <- P($p), $p = $u ++ @n ++ $v.\n"
       "Node(@n) <- P($u ++ @n ++ $v).\n"
       "---\n"
       "NotAll(@n) <- Node(@n), P($p), !Occurs(@n ++ $p).\n"
       "---\n"
       "S(@n) <- Node(@n), !NotAll(@n).\n",
       "S"},
  };
  return *corpus;
}

Result<const PaperQuery*> FindPaperQuery(const std::string& id) {
  for (const PaperQuery& q : PaperCorpus()) {
    if (q.id == id) return &q;
  }
  return Status::NotFound("no corpus query with id " + id);
}

Result<ParsedQuery> ParsePaperQuery(Universe& u, const PaperQuery& q) {
  SEQDL_ASSIGN_OR_RETURN(Program p, ParseProgram(u, q.program_text));
  SEQDL_ASSIGN_OR_RETURN(RelId out, u.FindRel(q.output_rel));
  return ParsedQuery{std::move(p), out};
}

Result<ParsedQuery> ParsePaperQuery(Universe& u, const std::string& id) {
  SEQDL_ASSIGN_OR_RETURN(const PaperQuery* q, FindPaperQuery(id));
  return ParsePaperQuery(u, *q);
}

}  // namespace seqdl
