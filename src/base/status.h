// Status and Result<T>: error handling without exceptions, in the style of
// arrow::Status / rocksdb::Status. All fallible public APIs in seqdl return
// Status or Result<T>.
#ifndef SEQDL_BASE_STATUS_H_
#define SEQDL_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace seqdl {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  /// Malformed input: parse errors, unsafe rules, unstratifiable programs.
  kInvalidArgument = 1,
  /// A lookup failed (unknown relation, variable, ...).
  kNotFound = 2,
  /// An evaluation or search budget was exhausted. This is how the engine
  /// reports (potential) nontermination of a Sequence Datalog program.
  kResourceExhausted = 3,
  /// A precondition of a transformation does not hold (e.g. eliminating
  /// packing from a program that is recursive with the nonrecursive method).
  kFailedPrecondition = 4,
  /// An internal invariant was violated; always a bug in seqdl itself.
  kInternal = 5,
  /// The requested operation is not implemented for this input.
  kUnimplemented = 6,
  /// The caller cancelled the operation (e.g. via RunOptions::cancel).
  kCancelled = 7,
  /// A filesystem operation failed (open/write/fsync/rename): disk full,
  /// permissions, corruption detected by a checksum. Environmental, not a
  /// seqdl bug — retrying after fixing the environment may succeed.
  kIoError = 8,
  /// A deadline elapsed before the operation completed (e.g. a client
  /// connect/read timeout). The operation may still be in flight on the
  /// other side; retrying may succeed.
  kDeadlineExceeded = 9,
  /// A required peer is unreachable or went away (connection refused,
  /// reset, or a shard missing from a cluster). Environmental; retrying
  /// once the peer returns may succeed.
  kUnavailable = 10,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the success case (no
/// allocation); carries a message in the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never both.
template <typename T>
class Result {
 public:
  // Implicit construction from values and from error statuses keeps call
  // sites readable: `return 42;` / `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace seqdl

/// Propagates an error Status from a fallible expression.
#define SEQDL_RETURN_IF_ERROR(expr)        \
  do {                                     \
    ::seqdl::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (false)

#define SEQDL_CONCAT_IMPL_(x, y) x##y
#define SEQDL_CONCAT_(x, y) SEQDL_CONCAT_IMPL_(x, y)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define SEQDL_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  SEQDL_ASSIGN_OR_RETURN_IMPL_(SEQDL_CONCAT_(_seqdl_result_, __LINE__), lhs, \
                               rexpr)

#define SEQDL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // SEQDL_BASE_STATUS_H_
