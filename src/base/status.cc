#include "src/base/status.h"

namespace seqdl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace seqdl
