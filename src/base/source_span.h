// Source locations for diagnostics. Lines and columns are 1-based (the
// lexer's convention); a span covers [start, end) where `end_col` is the
// column one past the last covered character. A default-constructed span
// (line 0) means "no location" — diagnostics render without the
// line:col prefix then.
#ifndef SEQDL_BASE_SOURCE_SPAN_H_
#define SEQDL_BASE_SOURCE_SPAN_H_

namespace seqdl {

struct SourceSpan {
  int line = 0;
  int col = 0;
  int end_line = 0;
  int end_col = 0;

  static SourceSpan At(int line, int col, int length = 1) {
    return SourceSpan{line, col, line, col + length};
  }

  bool valid() const { return line > 0; }

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.line == b.line && a.col == b.col && a.end_line == b.end_line &&
           a.end_col == b.end_col;
  }
  friend bool operator!=(const SourceSpan& a, const SourceSpan& b) {
    return !(a == b);
  }
};

}  // namespace seqdl

#endif  // SEQDL_BASE_SOURCE_SPAN_H_
