// Associative unification for path expressions (paper §4.3.1–§4.3.2).
//
// Implements Plotkin's "pig-pug" rewriting procedure for word equations,
// extended with the paper's rules (h)–(m) for atomic variables and packing.
// Given an equation e1 = e2, produces a *complete set of symbolic
// solutions*: variable substitutions ρ with ρ(e1) and ρ(e2) the same path
// expression, such that every concrete solution factors through some ρ.
//
// The classical procedure assumes variables take nonempty words; the
// empty word is accommodated by the footnote-4 closure (solving eq_Y for
// every subset Y of path variables replaced by ϵ).
//
// Termination: guaranteed for one-sided nonlinear equations (all variables
// occurring more than once occur in only one side; Durán et al.). For other
// equations the procedure may diverge; divergence is detected as a cycle in
// the rewrite graph and reported as kInvalidArgument, and a node budget
// guards against blow-up.
#ifndef SEQDL_UNIFY_UNIFY_H_
#define SEQDL_UNIFY_UNIFY_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct UnifyOptions {
  /// Maximum number of rewrite nodes to explore.
  size_t max_nodes = 1'000'000;
  /// Apply the empty-word closure (footnote 4). When false, solutions
  /// assign nonempty paths to all path variables (the classical setting,
  /// matching Figure 2 of the paper).
  bool allow_empty = true;
  /// Prune solutions that are instances of other solutions (the complete
  /// set stays complete but becomes minimal-ish; the empty-word closure in
  /// particular produces many redundant specializations).
  bool minimize = true;
};

struct UnifyResult {
  /// A complete set of symbolic solutions.
  std::vector<ExprSubst> solutions;
  /// Number of rewrite nodes explored.
  size_t nodes_explored = 0;
  /// Number of successful leaf branches (before deduplication); for the
  /// Figure 2 equation with allow_empty = false this is 4.
  size_t successful_branches = 0;
};

/// Solves e1 = e2.
Result<UnifyResult> UnifyExprs(Universe& u, const PathExpr& lhs,
                               const PathExpr& rhs,
                               const UnifyOptions& opts = {});

/// True iff every variable occurring more than once in the equation occurs
/// in one side only (the termination condition).
bool IsOneSidedNonlinear(const PathExpr& lhs, const PathExpr& rhs);

/// Human-readable rendering of a substitution, e.g.
/// "{$x -> @w·$x, $u -> @w}".
std::string FormatSubst(const Universe& u, const ExprSubst& subst);

/// Structural equality of substitutions (as maps).
bool SubstEquals(const ExprSubst& a, const ExprSubst& b);

/// True iff `specific` is an instance of `general` over the variables
/// `eq_vars`: there is a substitution σ with σ(ĝ(v)) = ŝ(v) for every
/// v ∈ eq_vars, where ĝ/ŝ extend the substitutions by identity. When
/// `allow_empty` is false, σ may not map path variables to the empty
/// expression (nonempty-assignment semantics).
bool IsSymbolicInstance(const Universe& u, const std::vector<VarId>& eq_vars,
                        const ExprSubst& general, const ExprSubst& specific,
                        bool allow_empty);

}  // namespace seqdl

#endif  // SEQDL_UNIFY_UNIFY_H_
