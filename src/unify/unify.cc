#include "src/unify/unify.h"

#include <map>
#include <set>
#include <unordered_set>

#include "src/syntax/printer.h"

namespace seqdl {

namespace {

// Occurrence counting for the one-sided nonlinearity check.
void CountVars(const PathExpr& e, std::map<VarId, int>* counts) {
  for (const ExprItem& it : e.items) {
    if (it.is_var()) {
      ++(*counts)[it.var];
    } else if (it.kind == ExprItem::Kind::kPack) {
      CountVars(*it.pack, counts);
    }
  }
}

// Structural key of an equation, used for cycle detection in the rewrite
// graph. Variables are not canonicalized: the pig-pug rules reuse variable
// names, so a diverging rewrite reproduces a literally identical equation.
void AppendExprKey(const PathExpr& e, std::string* out) {
  for (const ExprItem& it : e.items) {
    switch (it.kind) {
      case ExprItem::Kind::kConst:
        out->append("c");
        out->append(std::to_string(it.atom.bits()));
        break;
      case ExprItem::Kind::kAtomVar:
        out->append("a");
        out->append(std::to_string(it.var));
        break;
      case ExprItem::Kind::kPathVar:
        out->append("p");
        out->append(std::to_string(it.var));
        break;
      case ExprItem::Kind::kPack:
        out->append("[");
        AppendExprKey(*it.pack, out);
        out->append("]");
        break;
    }
    out->append(".");
  }
}

std::string EquationKey(const PathExpr& lhs, const PathExpr& rhs) {
  std::string key;
  AppendExprKey(lhs, &key);
  key.append("=");
  AppendExprKey(rhs, &key);
  return key;
}

// σ = τ ∘ ρ: apply ρ first, then refine with τ (the pig-pug rules reuse
// variable names, so images of ρ may mention variables bound by τ).
ExprSubst Compose(const ExprSubst& rho, const ExprSubst& tau) {
  ExprSubst out;
  for (const auto& [v, image] : rho) {
    out[v] = SubstituteExpr(image, tau);
  }
  for (const auto& [v, image] : tau) {
    if (!out.count(v)) out[v] = image;
  }
  return out;
}

PathExpr Rest(const PathExpr& e) {
  PathExpr out;
  out.items.assign(e.items.begin() + 1, e.items.end());
  return out;
}

PathExpr ConsExpr(ExprItem head, const PathExpr& tail) {
  PathExpr out;
  out.items.push_back(std::move(head));
  out.items.insert(out.items.end(), tail.items.begin(), tail.items.end());
  return out;
}

class PigPug {
 public:
  PigPug(Universe& u, const UnifyOptions& opts) : u_(u), opts_(opts) {}

  Result<UnifyResult> Solve(const PathExpr& lhs, const PathExpr& rhs) {
    UnifyResult result;
    std::vector<VarId> eq_vars;
    CollectVars(lhs, &eq_vars);
    CollectVars(rhs, &eq_vars);
    if (opts_.allow_empty) {
      // Footnote-4 closure: for every subset Y of path variables, solve the
      // equation with Y replaced by ϵ under nonempty semantics, and extend
      // the solutions with Y -> ϵ.
      std::map<VarId, int> counts;
      CountVars(lhs, &counts);
      CountVars(rhs, &counts);
      std::vector<VarId> path_vars;
      for (const auto& [v, _] : counts) {
        if (u_.VarKindOf(v) == VarKind::kPath) path_vars.push_back(v);
      }
      if (path_vars.size() > 20) {
        return Status::ResourceExhausted(
            "too many path variables for the empty-word closure");
      }
      for (uint32_t mask = 0; mask < (1u << path_vars.size()); ++mask) {
        ExprSubst to_empty;
        for (size_t i = 0; i < path_vars.size(); ++i) {
          if (mask & (1u << i)) to_empty[path_vars[i]] = PathExpr();
        }
        PathExpr l2 = SubstituteExpr(lhs, to_empty);
        PathExpr r2 = SubstituteExpr(rhs, to_empty);
        SEQDL_ASSIGN_OR_RETURN(std::vector<ExprSubst> subs,
                               SolveNonempty(l2, r2, &result));
        for (ExprSubst& s : subs) {
          for (const auto& [v, image] : to_empty) s[v] = image;
          AddSolution(&result, std::move(s));
        }
      }
    } else {
      SEQDL_ASSIGN_OR_RETURN(std::vector<ExprSubst> subs,
                             SolveNonempty(lhs, rhs, &result));
      for (ExprSubst& s : subs) AddSolution(&result, std::move(s));
    }
    if (opts_.minimize) Minimize(eq_vars, &result.solutions);
    return result;
  }

 private:
  // Removes solutions that are instances of other solutions; the set stays
  // complete. Mutual instances (alpha-variants) keep the earlier entry.
  void Minimize(const std::vector<VarId>& eq_vars,
                std::vector<ExprSubst>* solutions) {
    std::vector<bool> dropped(solutions->size(), false);
    for (size_t i = 0; i < solutions->size(); ++i) {
      if (dropped[i]) continue;
      for (size_t j = 0; j < solutions->size(); ++j) {
        if (i == j || dropped[j] || dropped[i]) continue;
        if (!IsSymbolicInstance(u_, eq_vars, (*solutions)[j], (*solutions)[i],
                                opts_.allow_empty)) {
          continue;
        }
        bool mutual = IsSymbolicInstance(u_, eq_vars, (*solutions)[i],
                                         (*solutions)[j], opts_.allow_empty);
        if (mutual) {
          dropped[std::max(i, j)] = true;
        } else {
          dropped[i] = true;
        }
      }
    }
    std::vector<ExprSubst> kept;
    for (size_t i = 0; i < solutions->size(); ++i) {
      if (!dropped[i]) kept.push_back(std::move((*solutions)[i]));
    }
    *solutions = std::move(kept);
  }

  void AddSolution(UnifyResult* result, ExprSubst s) {
    ++result->successful_branches;
    for (const ExprSubst& existing : result->solutions) {
      if (SubstEquals(existing, s)) return;
    }
    result->solutions.push_back(std::move(s));
  }

  // The core rewriting search under nonempty-assignment semantics.
  Result<std::vector<ExprSubst>> SolveNonempty(const PathExpr& lhs,
                                               const PathExpr& rhs,
                                               UnifyResult* result) {
    if (++result->nodes_explored > opts_.max_nodes) {
      return Status::ResourceExhausted(
          "associative unification exceeded node budget");
    }
    std::vector<ExprSubst> out;

    // Leaf cases.
    if (lhs.empty() && rhs.empty()) {
      out.push_back(ExprSubst{});
      return out;
    }
    if (lhs.empty() || rhs.empty()) return out;  // (ϵ = w), w nonempty: fail

    const ExprItem& x = lhs.items.front();
    const ExprItem& y = rhs.items.front();

    // Cycle detection: the rewrite rules reuse variable names, so a
    // divergent search revisits a literally identical equation.
    std::string key = EquationKey(lhs, rhs);
    if (in_progress_.count(key)) {
      return Status::InvalidArgument(
          "equation has no finite complete set of symbolic solutions "
          "(cycle in the pig-pug rewrite graph); the equation is not "
          "one-sided nonlinear");
    }
    in_progress_.insert(key);
    Status status = Status::OK();
    ExpandNode(lhs, rhs, x, y, result, &out, &status);
    in_progress_.erase(key);
    if (!status.ok()) return status;
    return out;
  }

  // Applies every applicable rewrite rule to the equation (x·w1 = y·w2) and
  // collects composed solutions into *out.
  void ExpandNode(const PathExpr& lhs, const PathExpr& rhs, const ExprItem& x,
                  const ExprItem& y, UnifyResult* result,
                  std::vector<ExprSubst>* out, Status* status) {
    using K = ExprItem::Kind;

    // Cancellation rule: identical heads (atom constants or same variable).
    if ((x.kind != K::kPack && x == y)) {
      Branch(ExprSubst{}, Rest(lhs), Rest(rhs), result, out, status);
      if (x.kind == K::kConst) return;  // no other rule applies
      // For identical variables, cancellation is the only sensible step
      // (the main rules require *distinct* variables).
      return;
    }

    if (x.kind == K::kPathVar && y.kind == K::kPathVar) {
      // Main rules (a), (b), (c) for distinct path variables.
      //   (a) x -> y·x : x is longer than y
      Branch(Subst1(x.var, ConsExpr(y, VarTail(x.var))),
             /*new_lhs=*/nullptr, lhs, rhs, x, result, out, status,
             RuleShape::kKeepLhsHead);
      //   (b) x -> y : equal
      Branch(Subst1(x.var, SingleExpr(y)), ApplyRest(lhs, x.var, SingleExpr(y)),
             ApplyRest(rhs, x.var, SingleExpr(y)), result, out, status);
      //   (c) y -> x·y : y is longer than x
      Branch(Subst1(y.var, ConsExpr(x, VarTail(y.var))),
             /*new_lhs=*/nullptr, rhs, lhs, y, result, out, status,
             RuleShape::kKeepLhsHeadSwapped);
      return;
    }

    // Path variable head on the left vs a "rigid" item (constant, atomic
    // variable, or pack): rules (d)/(e) and their extensions (j), (m).
    if (x.kind == K::kPathVar && IsRigid(y)) {
      //   x -> y·x (x continues)
      Branch(Subst1(x.var, ConsExpr(y, VarTail(x.var))),
             /*new_lhs=*/nullptr, lhs, rhs, x, result, out, status,
             RuleShape::kKeepLhsHead);
      //   x -> y (x consumed)
      Branch(Subst1(x.var, SingleExpr(y)), ApplyRest(lhs, x.var, SingleExpr(y)),
             ApplyRest(rhs, x.var, SingleExpr(y)), result, out, status);
      return;
    }
    if (y.kind == K::kPathVar && IsRigid(x)) {  // rules (f)/(g), (i), (l)
      Branch(Subst1(y.var, ConsExpr(x, VarTail(y.var))),
             /*new_lhs=*/nullptr, rhs, lhs, y, result, out, status,
             RuleShape::kKeepLhsHeadSwapped);
      Branch(Subst1(y.var, SingleExpr(x)), ApplyRest(lhs, y.var, SingleExpr(x)),
             ApplyRest(rhs, y.var, SingleExpr(x)), result, out, status);
      return;
    }

    // Atomic-variable heads: rule (h) and the constant analogues.
    if (x.kind == K::kAtomVar && y.kind == K::kAtomVar) {
      Branch(Subst1(x.var, SingleExpr(y)), ApplyRest(lhs, x.var, SingleExpr(y)),
             ApplyRest(rhs, x.var, SingleExpr(y)), result, out, status);
      return;
    }
    if (x.kind == K::kAtomVar && y.kind == K::kConst) {
      Branch(Subst1(x.var, SingleExpr(y)), ApplyRest(lhs, x.var, SingleExpr(y)),
             ApplyRest(rhs, x.var, SingleExpr(y)), result, out, status);
      return;
    }
    if (x.kind == K::kConst && y.kind == K::kAtomVar) {
      Branch(Subst1(y.var, SingleExpr(x)), ApplyRest(lhs, y.var, SingleExpr(x)),
             ApplyRest(rhs, y.var, SingleExpr(x)), result, out, status);
      return;
    }

    // Pack vs pack: rule (k) — solve the inner equation, then continue with
    // each inner solution applied to the tails.
    if (x.kind == K::kPack && y.kind == K::kPack) {
      Result<std::vector<ExprSubst>> inner =
          SolveInner(*x.pack, *y.pack, result);
      if (!inner.ok()) {
        *status = inner.status();
        return;
      }
      for (const ExprSubst& rho : *inner) {
        Branch(rho, SubstituteExpr(Rest(lhs), rho),
               SubstituteExpr(Rest(rhs), rho), result, out, status);
      }
      return;
    }

    // Remaining head combinations (atom vs different atom, atom vs pack,
    // atomic variable vs pack, ...) cannot be unified: non-successful leaf.
  }

  // Inner pack equations get the full treatment, including the empty-word
  // closure (components inside packs may be empty even under the outer
  // nonempty semantics).
  Result<std::vector<ExprSubst>> SolveInner(const PathExpr& lhs,
                                            const PathExpr& rhs,
                                            UnifyResult* result) {
    std::map<VarId, int> counts;
    CountVars(lhs, &counts);
    CountVars(rhs, &counts);
    std::vector<VarId> path_vars;
    for (const auto& [v, _] : counts) {
      if (u_.VarKindOf(v) == VarKind::kPath) path_vars.push_back(v);
    }
    if (path_vars.size() > 20) {
      return Status::ResourceExhausted(
          "too many path variables in packed subequation");
    }
    std::vector<ExprSubst> all;
    for (uint32_t mask = 0; mask < (1u << path_vars.size()); ++mask) {
      ExprSubst to_empty;
      for (size_t i = 0; i < path_vars.size(); ++i) {
        if (mask & (1u << i)) to_empty[path_vars[i]] = PathExpr();
      }
      PathExpr l2 = SubstituteExpr(lhs, to_empty);
      PathExpr r2 = SubstituteExpr(rhs, to_empty);
      SEQDL_ASSIGN_OR_RETURN(std::vector<ExprSubst> subs,
                             SolveNonempty(l2, r2, result));
      for (ExprSubst& s : subs) {
        for (const auto& [v, image] : to_empty) {
          if (!s.count(v)) s[v] = image;
        }
        bool dup = false;
        for (const ExprSubst& e : all) {
          if (SubstEquals(e, s)) {
            dup = true;
            break;
          }
        }
        if (!dup) all.push_back(std::move(s));
      }
    }
    return all;
  }

  enum class RuleShape { kPlain, kKeepLhsHead, kKeepLhsHeadSwapped };

  static bool IsRigid(const ExprItem& it) {
    return it.kind == ExprItem::Kind::kConst ||
           it.kind == ExprItem::Kind::kAtomVar ||
           it.kind == ExprItem::Kind::kPack;
  }

  PathExpr VarTail(VarId v) const { return VarExpr(u_, v); }
  static PathExpr SingleExpr(const ExprItem& it) {
    return PathExpr({it});
  }
  static ExprSubst Subst1(VarId v, PathExpr image) {
    ExprSubst s;
    s[v] = std::move(image);
    return s;
  }
  // Applies {v -> image} to the *rest* of e (dropping e's head).
  static PathExpr ApplyRest(const PathExpr& e, VarId v, PathExpr image) {
    ExprSubst s = Subst1(v, std::move(image));
    return SubstituteExpr(Rest(e), s);
  }

  // Plain branch: recurse on (new_lhs = new_rhs), composing rho with each
  // child solution.
  void Branch(const ExprSubst& rho, PathExpr new_lhs, PathExpr new_rhs,
              UnifyResult* result, std::vector<ExprSubst>* out,
              Status* status) {
    if (!status->ok()) return;
    Result<std::vector<ExprSubst>> children =
        SolveNonempty(new_lhs, new_rhs, result);
    if (!children.ok()) {
      *status = children.status();
      return;
    }
    for (const ExprSubst& tau : *children) {
      out->push_back(Compose(rho, tau));
    }
  }

  // Branch for rules of shape (x·w1 = y·w2) => (x·ρ(w1) = ρ(w2)) with
  // ρ(x) = y·x: the head variable x stays in front of the rewritten lhs.
  // `shape` selects whether (kept_side, other_side) corresponds to
  // (lhs, rhs) or swapped; the recursive equation keeps orientation.
  void Branch(const ExprSubst& rho, std::nullptr_t, const PathExpr& kept_side,
              const PathExpr& other_side, const ExprItem& head_var,
              UnifyResult* result, std::vector<ExprSubst>* out, Status* status,
              RuleShape shape) {
    if (!status->ok()) return;
    PathExpr new_kept =
        ConsExpr(head_var, SubstituteExpr(Rest(kept_side), rho));
    PathExpr new_other = SubstituteExpr(Rest(other_side), rho);
    PathExpr new_lhs, new_rhs;
    if (shape == RuleShape::kKeepLhsHeadSwapped) {
      new_lhs = std::move(new_other);
      new_rhs = std::move(new_kept);
    } else {
      new_lhs = std::move(new_kept);
      new_rhs = std::move(new_other);
    }
    Branch(rho, std::move(new_lhs), std::move(new_rhs), result, out, status);
  }

  Universe& u_;
  UnifyOptions opts_;
  std::unordered_set<std::string> in_progress_;
};

}  // namespace

Result<UnifyResult> UnifyExprs(Universe& u, const PathExpr& lhs,
                               const PathExpr& rhs, const UnifyOptions& opts) {
  PigPug p(u, opts);
  return p.Solve(lhs, rhs);
}

bool IsOneSidedNonlinear(const PathExpr& lhs, const PathExpr& rhs) {
  std::map<VarId, int> left, right;
  CountVars(lhs, &left);
  CountVars(rhs, &right);
  std::set<VarId> all;
  for (const auto& [v, _] : left) all.insert(v);
  for (const auto& [v, _] : right) all.insert(v);
  for (VarId v : all) {
    int l = left.count(v) ? left.at(v) : 0;
    int r = right.count(v) ? right.at(v) : 0;
    if (l + r >= 2 && l > 0 && r > 0) return false;
  }
  return true;
}

std::string FormatSubst(const Universe& u, const ExprSubst& subst) {
  // Sort by variable name for determinism.
  std::map<std::string, std::string> entries;
  for (const auto& [v, image] : subst) {
    std::string sigil = u.VarKindOf(v) == VarKind::kAtomic ? "@" : "$";
    entries[sigil + u.VarName(v)] = FormatExpr(u, image);
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, image] : entries) {
    if (!first) out += ", ";
    out += name + " -> " + image;
    first = false;
  }
  out += "}";
  return out;
}

bool SubstEquals(const ExprSubst& a, const ExprSubst& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [v, image] : a) {
    auto it = b.find(v);
    if (it == b.end() || !(it->second == image)) return false;
  }
  return true;
}

namespace {

// One-way symbolic matching: find σ with σ(pattern) = target (syntactic
// identity of expressions). Pattern variables bind to subexpressions of the
// target; path variables to item sequences (possibly empty if
// `allow_empty`), atomic variables to a single atom-kinded item.
class SymbolicMatcher {
 public:
  SymbolicMatcher(const Universe& u, bool allow_empty)
      : u_(u), allow_empty_(allow_empty) {}

  // Matches a whole list of (pattern, target) pairs under one shared σ.
  bool MatchPairs(const std::vector<std::pair<PathExpr, PathExpr>>& pairs) {
    return MatchPair(pairs, 0);
  }

 private:
  bool MatchPair(const std::vector<std::pair<PathExpr, PathExpr>>& pairs,
                 size_t idx) {
    if (idx == pairs.size()) return true;
    const auto& [pattern, target] = pairs[idx];
    return MatchItems(pattern.items, 0, target.items, 0,
                      [&]() { return MatchPair(pairs, idx + 1); });
  }

  bool MatchItems(const std::vector<ExprItem>& pattern, size_t pi,
                  const std::vector<ExprItem>& target, size_t ti,
                  const std::function<bool()>& next) {
    if (pi == pattern.size()) {
      if (ti != target.size()) return false;
      return next();
    }
    const ExprItem& it = pattern[pi];
    switch (it.kind) {
      case ExprItem::Kind::kConst: {
        if (ti >= target.size() || !(target[ti] == it)) return false;
        return MatchItems(pattern, pi + 1, target, ti + 1, next);
      }
      case ExprItem::Kind::kAtomVar: {
        if (ti >= target.size()) return false;
        const ExprItem& t = target[ti];
        bool atom_kinded = t.kind == ExprItem::Kind::kConst ||
                           t.kind == ExprItem::Kind::kAtomVar;
        if (!atom_kinded) return false;
        auto bound = sigma_.find(it.var);
        if (bound != sigma_.end()) {
          if (!(bound->second.items.size() == 1 &&
                bound->second.items[0] == t)) {
            return false;
          }
          return MatchItems(pattern, pi + 1, target, ti + 1, next);
        }
        sigma_[it.var] = PathExpr({t});
        bool ok = MatchItems(pattern, pi + 1, target, ti + 1, next);
        sigma_.erase(it.var);
        return ok;
      }
      case ExprItem::Kind::kPack: {
        if (ti >= target.size() ||
            target[ti].kind != ExprItem::Kind::kPack) {
          return false;
        }
        const std::vector<ExprItem>& inner_t = target[ti].pack->items;
        return MatchItems(it.pack->items, 0, inner_t, 0, [&]() {
          return MatchItems(pattern, pi + 1, target, ti + 1, next);
        });
      }
      case ExprItem::Kind::kPathVar: {
        auto bound = sigma_.find(it.var);
        if (bound != sigma_.end()) {
          const std::vector<ExprItem>& image = bound->second.items;
          if (ti + image.size() > target.size()) return false;
          for (size_t k = 0; k < image.size(); ++k) {
            if (!(target[ti + k] == image[k])) return false;
          }
          return MatchItems(pattern, pi + 1, target, ti + image.size(), next);
        }
        size_t remaining = target.size() - ti;
        size_t min_len = allow_empty_ ? 0 : 1;
        for (size_t len = min_len; len <= remaining; ++len) {
          PathExpr image;
          image.items.assign(target.begin() + static_cast<ptrdiff_t>(ti),
                             target.begin() + static_cast<ptrdiff_t>(ti + len));
          sigma_[it.var] = std::move(image);
          if (MatchItems(pattern, pi + 1, target, ti + len, next)) {
            sigma_.erase(it.var);
            return true;
          }
          sigma_.erase(it.var);
        }
        return false;
      }
    }
    return false;
  }

  const Universe& u_;
  bool allow_empty_;
  ExprSubst sigma_;
};

PathExpr ImageOrIdentity(const Universe& u, const ExprSubst& s, VarId v) {
  auto it = s.find(v);
  if (it != s.end()) return it->second;
  return VarExpr(u, v);
}

}  // namespace

bool IsSymbolicInstance(const Universe& u, const std::vector<VarId>& eq_vars,
                        const ExprSubst& general, const ExprSubst& specific,
                        bool allow_empty) {
  std::vector<std::pair<PathExpr, PathExpr>> pairs;
  for (VarId v : eq_vars) {
    pairs.emplace_back(ImageOrIdentity(u, general, v),
                       ImageOrIdentity(u, specific, v));
  }
  SymbolicMatcher m(u, allow_empty);
  return m.MatchPairs(pairs);
}

}  // namespace seqdl
