#include "src/view/view.h"

#include <set>
#include <utility>
#include <vector>

#include "src/syntax/ast.h"

namespace seqdl {

namespace {

/// Rough per-fact heap cost beyond the PathId payload: the TupleSet node,
/// hash bucket slot, and vector header. An estimate feeding cache
/// accounting, never semantics.
constexpr size_t kPerFactOverhead = 48;

size_t ApproxInstanceBytes(const Instance& idb) {
  size_t bytes = 0;
  for (RelId rel : idb.Relations()) {
    const TupleSet& ts = idb.Tuples(rel);
    if (ts.empty()) continue;
    // Every tuple of a relation has the declared arity, so one sample
    // prices them all — the estimate stays O(#relations) per refresh.
    bytes +=
        ts.size() * (ts.begin()->size() * sizeof(PathId) + kPerFactOverhead);
  }
  return bytes;
}

/// Restricts cold-run support counts to the tuples that actually ended up
/// in the view (DeriveHead also counts firings whose head tuple was
/// already EDB; those facts are not view state).
SharedSupport PruneSupport(SupportCounts&& counts, const Instance& idb) {
  SharedSupport out;
  for (auto& [rel, m] : counts) {
    const TupleSet& have = idb.Tuples(rel);
    if (have.empty()) continue;
    auto dst =
        std::make_shared<std::unordered_map<Tuple, uint32_t, TupleHash>>();
    dst->reserve(have.size());
    for (auto& [t, n] : m) {
      if (have.count(t) != 0) dst->emplace(t, n);
    }
    if (!dst->empty()) out.emplace(rel, std::move(dst));
  }
  return out;
}

/// Merges carried-over and fresh counts for a delta refresh: maintained
/// strata keep their stored counts plus any new derivation events minus
/// the DRed deletion phase's decrements; recomputed strata start over
/// from the fresh events alone. Restricted to the new view's tuples
/// either way. A maintained relation the delta pass neither fired into
/// nor decremented shares the previous snapshot's map outright — no new
/// tuples means no new counts, and an unchanged tuple count rules out
/// EDB promotion, so the carried map is exactly right as is.
SharedSupport CombineSupport(const Instance& idb, const SupportCounts& fresh,
                             const SupportCounts& decrements,
                             const SharedSupport& old,
                             const std::set<RelId>& recomputed_rels) {
  SharedSupport out;
  for (RelId rel : idb.Relations()) {
    const TupleSet& have = idb.Tuples(rel);
    if (have.empty()) continue;
    const auto fit = fresh.find(rel);
    const bool has_fresh = fit != fresh.end() && !fit->second.empty();
    const auto dit = decrements.find(rel);
    const bool has_dec = dit != decrements.end() && !dit->second.empty();
    const auto oit = old.find(rel);
    const bool carry = recomputed_rels.count(rel) == 0;
    const auto* old_map =
        (carry && oit != old.end()) ? oit->second.get() : nullptr;
    // Every new tuple comes from a rule firing the delta pass counted, so
    // no fresh events = no additions; equal sizes then rule out the only
    // other change (adopted facts dropped by EDB promotion). Share.
    if (!has_fresh && !has_dec && old_map != nullptr &&
        old_map->size() == have.size()) {
      out.emplace(rel, oit->second);
      continue;
    }
    if (old_map != nullptr) {
      // Carried counts with changes: copy the old map wholesale and
      // patch it, rather than re-probing three hash tables per view
      // tuple. Merging the fresh events (restricted to view tuples —
      // DeriveHead also counts firings onto EDB facts) covers every
      // addition, so afterwards the copy's keys are a superset of the
      // view's; a size mismatch means EDB promotion or DRed deletion
      // dropped tuples, and exactly the stale keys are erased.
      auto dst = std::make_shared<
          std::unordered_map<Tuple, uint32_t, TupleHash>>(*old_map);
      if (has_fresh) {
        for (const auto& [t, n] : fit->second) {
          if (have.count(t) == 0) continue;
          uint64_t m = static_cast<uint64_t>((*dst)[t]) + n;
          (*dst)[t] =
              m > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(m);
        }
      }
      if (has_dec) {
        // Checked, saturating decrement floored at one: a surviving view
        // tuple always keeps a positive count, no matter how far the
        // deletion phase over-decremented it (the floor only ever
        // *undercounts*, whose worst case is a spurious re-derivation
        // check on a later retraction — never a wrong deletion). Tuples
        // the deletion actually removed are erased below, not here.
        for (const auto& [t, n] : dit->second) {
          auto i = dst->find(t);
          if (i == dst->end()) continue;
          i->second = i->second > n ? i->second - n : 1;
        }
      }
      if (dst->size() != have.size()) {
        std::erase_if(*dst, [&](const auto& entry) {
          return have.count(entry.first) == 0;
        });
      }
      out.emplace(rel, std::move(dst));
      continue;
    }
    auto dst =
        std::make_shared<std::unordered_map<Tuple, uint32_t, TupleHash>>();
    dst->reserve(have.size());
    for (const Tuple& t : have) {
      uint64_t n = 0;
      if (has_fresh) {
        auto i = fit->second.find(t);
        if (i != fit->second.end()) n += i->second;
      }
      // Every view tuple has at least one derivation by construction;
      // clamp so the invariant survives saturation and carried gaps.
      if (n == 0) n = 1;
      if (n > UINT32_MAX) n = UINT32_MAX;
      dst->emplace(t, static_cast<uint32_t>(n));
    }
    out.emplace(rel, std::move(dst));
  }
  return out;
}

}  // namespace

Result<std::shared_ptr<const ViewSnapshot>> ViewManager::Refresh(
    const std::string& key, const PreparedProgram& prog,
    const RunOptions& opts, EvalStats* stats) {
  if (&prog.universe() != state_->universe) {
    return Status::InvalidArgument(
        "program was compiled against a different Universe than the "
        "database was opened with");
  }
  // Pin the segment set first: an append racing past after this read
  // makes the refreshed view one epoch stale, never wrong — the next
  // Refresh advances it.
  std::shared_ptr<const Database::SegmentSet> cur = state_->Current();
  std::shared_ptr<const ViewSnapshot> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = views_.find(key);
    if (it != views_.end()) old = it->second;
    if (old != nullptr && old->epoch_ == cur->epoch) {
      ++counters_.hits;
      return old;
    }
  }

  // A view pinned below the compaction shrink floor cannot be
  // delta-advanced: compaction folded tombstones it has never observed
  // into the base, so the stack no longer says which of its facts died.
  // Fall back to a cold materialization.
  if (old != nullptr && old->epoch_ < cur->shrink_floor) old = nullptr;

  // Partition the stack by publish stamp: the first `base_prefix`
  // segments are the ones the stored view already covers (stamps are
  // non-decreasing, so the covered base is always a prefix); the suffix
  // is the delta. With no stored view everything is base and a cold run
  // materializes.
  std::vector<const BaseStore*> all;
  all.reserve(cur->segments.size());
  size_t base_prefix = 0;
  bool shrink_delta = false;
  for (size_t i = 0; i < cur->segments.size(); ++i) {
    all.push_back(cur->segments[i].get());
    if (old != nullptr && cur->segment_epochs[i] <= old->epoch_) {
      base_prefix = i + 1;
    } else if (cur->segment_kinds[i] == SegmentKind::kTombstones) {
      shrink_delta = true;
    }
  }

  auto snap = std::make_shared<ViewSnapshot>();
  snap->epoch_ = cur->epoch;
  snap->segments_ = cur->segments.size();
  size_t recomputed_strata = 0;

  // Route derived-stats measurement through a local sink when the caller
  // did not pass one, so it still reaches the database's accumulator
  // (same plumbing as Session::Run).
  EvalStats local;
  EvalStats* sink =
      stats != nullptr ? stats
                       : (opts.collect_derived_stats ? &local : nullptr);

  if (old == nullptr) {
    SupportCounts support;
    RunOptions o = opts;
    o.support = &support;
    // Cold runs must see the stack the way a Session would: tombstone
    // segments hide retracted facts, so pass the kinds alongside the
    // segments (RunOnSegments would treat everything as facts).
    SEQDL_ASSIGN_OR_RETURN(
        snap->idb_, prog.RunOnStack(all, cur->segment_kinds, o, sink));
    // A full recomputation happened: apply the epoch decays deferred by
    // appends (same contract as Session::Run).
    state_->accum.AgeOnRecompute(StatsAccumulator::kEpochDecay);
    snap->support_ = PruneSupport(std::move(support), snap->idb_);
  } else {
    SupportCounts fresh;
    RunOptions o = opts;
    o.support = &fresh;
    // The deletion phase reads the stored counts through this lookup; 0
    // (unknown) makes the executor fall back to delete-on-first-decrement.
    const SharedSupport& old_support = old->support_;
    SupportLookup lookup = [&old_support](RelId rel,
                                          const Tuple& t) -> uint32_t {
      auto it = old_support.find(rel);
      if (it == old_support.end()) return 0;
      auto jt = it->second->find(t);
      return jt == it->second->end() ? 0 : jt->second;
    };
    SEQDL_ASSIGN_OR_RETURN(
        PreparedProgram::DeltaRun run,
        prog.RunDelta(all, cur->segment_kinds, base_prefix, old->idb_, lookup,
                      o, sink));
    std::set<RelId> recomputed_rels;
    for (size_t s : run.recomputed_strata) {
      for (const Rule& r : prog.program().strata[s].rules) {
        recomputed_rels.insert(r.head.rel);
      }
    }
    recomputed_strata = run.recomputed_strata.size();
    snap->idb_ = std::move(run.idb);
    snap->support_ = CombineSupport(snap->idb_, fresh, run.decrements,
                                    old->support_, recomputed_rels);
  }
  snap->bytes_ = ApproxInstanceBytes(snap->idb_);

  // Record what the view now holds (cold or refreshed — either way the
  // materialized IDB is the current derived shape), so drift-triggered
  // recompilation keeps working in view-serving mode.
  if (opts.collect_derived_stats && sink != nullptr) {
    state_->accum.Record(sink->derived_stats);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (old == nullptr) {
    ++counters_.cold_runs;
  } else {
    ++counters_.delta_refreshes;
    if (shrink_delta) ++counters_.dred_refreshes;
    counters_.strata_recomputed += recomputed_strata;
  }
  // Publish unless a racing refresh already installed a newer epoch.
  auto& slot = views_[key];
  if (slot == nullptr || slot->epoch_ <= snap->epoch_) slot = snap;
  return std::shared_ptr<const ViewSnapshot>(snap);
}

std::shared_ptr<const ViewSnapshot> ViewManager::Lookup(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(key);
  return it == views_.end() ? nullptr : it->second;
}

void ViewManager::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  views_.erase(key);
}

void ViewManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  views_.clear();
}

size_t ViewManager::NumViews() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

ViewManager::Counters ViewManager::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace seqdl
