// Materialized views: derived results as first-class versioned state.
//
// A ViewSnapshot is the complete derived IDB of one prepared program at
// one database epoch — immutable, shared by shared_ptr, and published
// under the same MVCC discipline as the EDB's segment stack (database.h).
// The ViewManager (one per Database, reachable via Database::views())
// keeps at most one current snapshot per view key and keeps it fresh
// *incrementally*: when Refresh finds the database epoch has moved past a
// stored snapshot, it partitions the current segment stack by publish
// stamp (SegmentSet::segment_epochs) into the base prefix the snapshot
// already covers and the segments published since, and runs
// PreparedProgram::RunDelta — semi-naive delta evaluation of the net
// additions plus counting DRed (delete/re-derive) for the net
// retractions, against the stored IDB — instead of re-running the full
// fixpoint. Strata the delta pass cannot maintain soundly (negation over
// a changed input) are recomputed wholesale; everything else is adopted
// and patched in place, shrink epochs included. A snapshot pinned below
// SegmentSet::shrink_floor (compaction folded tombstones it never saw)
// falls back to a cold materialization. The refreshed snapshot is
// byte-identical to a cold fixpoint at the new epoch
// (tests/differential_test.cc enforces this at every epoch, across
// retraction and compaction).
//
// Epoch lifecycle of one view key:
//
//   epoch   0         1          2          3
//   EDB     [s0]      [s0 s1]    [s0 s1 s2] [s0 s1 s2 s3]
//            |          |           |          |
//   view    cold ----> delta ----> delta ----> delta     (Refresh calls)
//            v0@0       v1@1        v2@2        v3@3
//
// Each vk is immutable once published; a reader holding v1 keeps reading
// v1 while the manager publishes v3 (exactly like epoch-pinned Sessions).
// Compaction folds segments under an unchanged epoch: a view at that
// epoch is still a hit, while an older view sees the merged segment as
// one over-approximate delta — sound, because delta-evaluating facts the
// view already reflects only re-derives known tuples.
//
// Every snapshot also records counting-based *support*: per derived
// tuple, how many rule firings produced it (RunOptions::support). The
// stored counts drive DRed on retraction epochs: the deletion phase
// decrements the support of every derivation consuming a retracted fact,
// only tuples whose count reaches zero are provisionally deleted, and
// only those need the expensive re-derivation check. Count-gating is
// exact only for relations whose support is acyclic — a relation that
// reaches itself through its stratum's other heads can be propped up by
// firings that die with the tuple itself, so the executor deletes those
// on the first decrement (classic over-deleting DRed, see
// CyclicHeads in engine.cc) and lets re-derivation rescue survivors.
// Maintained strata carry their counts forward plus fresh events minus
// the deletion phase's decrements (saturating, floored at one for
// surviving tuples — a high-fan-in tuple can never wrap past zero and
// be wrongly dropped); recomputed strata get fresh counts. The counts
// are a lower bound on the true derivation count, which errs in the
// safe direction (an undercount triggers a spurious re-derivation
// check, never a wrong deletion).
//
// Thread-safety: all ViewManager methods may be called from any thread.
// The map mutex guards lookups and publishes only — evaluation runs
// outside it, so a slow refresh never blocks hits on other keys. Two
// racing refreshes of one key both evaluate and the newer epoch wins.
#ifndef SEQDL_VIEW_VIEW_H_
#define SEQDL_VIEW_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/base/status.h"
#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"

namespace seqdl {

/// Per-relation support counts of one view, shared between snapshots:
/// a delta refresh that neither recomputed a relation nor derived new
/// facts for it reuses the previous snapshot's map wholesale instead of
/// rebuilding O(|view|) entries (both snapshots are immutable, so
/// sharing is safe).
using SharedSupport =
    std::map<RelId, std::shared_ptr<const std::unordered_map<
                        Tuple, uint32_t, TupleHash>>>;

/// One immutable materialized view: the complete derived IDB of a program
/// at one epoch, plus per-tuple support counts.
class ViewSnapshot {
 public:
  /// The database epoch this view is current at.
  uint64_t epoch() const { return epoch_; }
  /// Segments of the stack the view was evaluated over.
  uint64_t segments() const { return segments_; }
  /// The derived facts (never contains EDB facts — exactly what a cold
  /// Session::Run returns).
  const Instance& idb() const { return idb_; }
  /// Derivation-event counts per derived tuple (see file comment).
  /// Covers every tuple of idb() with a count >= 1.
  const SharedSupport& support() const { return support_; }
  /// Approximate heap bytes of the materialized IDB — the currency of
  /// the server cache's byte accounting (service.h).
  size_t ApproxBytes() const { return bytes_; }

 private:
  friend class ViewManager;
  uint64_t epoch_ = 0;
  uint64_t segments_ = 0;
  Instance idb_;
  SharedSupport support_;
  size_t bytes_ = 0;
};

/// Keeps materialized views fresh across appends. Owned by Database
/// (heap-stable in its DbState); obtain via Database::views().
class ViewManager {
 public:
  struct Counters {
    /// Refresh found the stored snapshot already at the current epoch.
    uint64_t hits = 0;
    /// Full materializations (first Refresh of a key, or after
    /// Invalidate).
    uint64_t cold_runs = 0;
    /// Incremental refreshes (RunDelta over the segments published
    /// since).
    uint64_t delta_refreshes = 0;
    /// The subset of delta_refreshes whose window contained a tombstone
    /// segment — the DRed deletion/re-derivation machinery ran.
    uint64_t dred_refreshes = 0;
    /// Strata recomputed wholesale inside those delta refreshes (0 when
    /// every stratum was maintainable).
    uint64_t strata_recomputed = 0;
  };

  /// The current snapshot for `key`, materializing or delta-refreshing
  /// as needed: a stored snapshot at the current epoch is returned as
  /// is; a stale one is advanced by RunDelta over the segments appended
  /// since; a missing one is cold-materialized (a full fixpoint, which
  /// also applies the deferred statistics decay — see
  /// StatsAccumulator::AgeOnRecompute). `key` is the caller's identity
  /// for the view (the server uses the program text); `prog` must be
  /// compiled against the database's Universe and must be the same
  /// program for every call with the same key — the manager stores
  /// results, not programs. On evaluation failure the stored snapshot
  /// (still correct at its own epoch) is left in place.
  Result<std::shared_ptr<const ViewSnapshot>> Refresh(
      const std::string& key, const PreparedProgram& prog,
      const RunOptions& opts = {}, EvalStats* stats = nullptr);

  /// The stored snapshot for `key` (possibly stale), or null.
  std::shared_ptr<const ViewSnapshot> Lookup(const std::string& key) const;

  /// Drops the stored snapshot for `key` (the next Refresh runs cold).
  void Invalidate(const std::string& key);
  /// Drops every stored snapshot.
  void Clear();

  size_t NumViews() const;
  Counters counters() const;

 private:
  friend class Database;
  explicit ViewManager(Database::DbState& state) : state_(&state) {}

  Database::DbState* state_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ViewSnapshot>> views_;
  Counters counters_;
};

}  // namespace seqdl

#endif  // SEQDL_VIEW_VIEW_H_
