#include "src/workload/baselines.h"

#include <algorithm>
#include <deque>
#include <tuple>

namespace seqdl {

bool OnlyAs(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](char c) { return c == 'a'; });
}

std::string ReverseString(const std::string& s) {
  return std::string(s.rbegin(), s.rend());
}

std::vector<std::string> SquaringOutputs(const std::set<std::string>& input) {
  std::vector<std::string> out;
  for (const std::string& s : input) {
    if (OnlyAs(s)) {
      out.push_back(std::string(s.size() * s.size(), 'a'));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t CountMarkedOccurrences(const std::set<std::string>& haystacks,
                              const std::set<std::string>& needles) {
  // Count distinct (u, s, v) triples, matching the set semantics of the
  // T relation in Example 2.2.
  std::set<std::tuple<std::string, std::string, std::string>> marked;
  for (const std::string& hay : haystacks) {
    for (const std::string& s : needles) {
      if (s.size() > hay.size()) continue;
      for (size_t i = 0; i + s.size() <= hay.size(); ++i) {
        if (hay.compare(i, s.size(), s) == 0) {
          marked.emplace(hay.substr(0, i), s, hay.substr(i + s.size()));
        }
      }
    }
  }
  return marked.size();
}

bool Reachable(const Graph& g, uint32_t from, uint32_t to) {
  std::vector<std::vector<uint32_t>> adj(g.nodes);
  for (const auto& [a, b] : g.edges) adj[a].push_back(b);
  std::vector<bool> seen(g.nodes, false);
  std::deque<uint32_t> queue;
  // Nonempty-path reachability: start from successors of `from`.
  for (uint32_t n : adj[from]) {
    if (!seen[n]) {
      seen[n] = true;
      queue.push_back(n);
    }
  }
  while (!queue.empty()) {
    uint32_t n = queue.front();
    queue.pop_front();
    if (n == to) return true;
    for (uint32_t m : adj[n]) {
      if (!seen[m]) {
        seen[m] = true;
        queue.push_back(m);
      }
    }
  }
  return false;
}

bool IsMarkedPair(const std::string& s) {
  if (s.size() % 2 != 0) return false;
  size_t n = s.size() / 2;
  for (size_t i = 0; i < n; ++i) {
    if (s[i] == s[s.size() - 1 - i]) return false;
  }
  return true;
}

bool EveryCoFollowedByRp(const std::vector<std::string>& events) {
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i] != "co") continue;
    bool found = false;
    for (size_t j = i + 1; j < events.size() && !found; ++j) {
      found = events[j] == "rp";
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace seqdl
