// Synthetic workload generators for tests and benchmarks: random flat
// string databases, random NFAs (Example 2.1), random graphs encoded as
// length-2 paths (Section 5.1.1), and random event logs (process mining).
#ifndef SEQDL_WORKLOAD_GENERATORS_H_
#define SEQDL_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/engine/instance.h"
#include "src/term/universe.h"

namespace seqdl {

struct StringWorkload {
  size_t count = 10;
  size_t min_len = 0;
  size_t max_len = 8;
  size_t alphabet = 2;  // letters 'a', 'b', ...
  uint64_t seed = 1;
  std::string rel = "R";
};

/// A unary relation of random flat strings over a small alphabet.
Result<Instance> RandomStrings(Universe& u, const StringWorkload& w);

/// A direct (non-Datalog) NFA used as the baseline for Example 2.1.
struct Nfa {
  size_t num_states = 0;
  size_t alphabet = 0;
  std::vector<bool> initial;
  std::vector<bool> accepting;
  /// delta[state][letter] -> successor states.
  std::vector<std::vector<std::vector<uint32_t>>> delta;

  bool Accepts(const std::vector<uint32_t>& word) const;
};

struct NfaWorkload {
  size_t num_states = 4;
  size_t alphabet = 2;
  double density = 0.3;  // probability of each transition
  uint64_t seed = 1;
};

Nfa RandomNfa(const NfaWorkload& w);

/// Encodes an NFA as the classical relations of Example 2.1: N (initial
/// states), D (transitions), F (final states). States are atoms "q<i>",
/// letters "a", "b", ....
Result<Instance> NfaToInstance(Universe& u, const Nfa& nfa);

/// The letter atoms "a", "b", ... used by NfaToInstance / RandomStrings.
std::string LetterName(size_t letter);

/// A random directed graph with `nodes` nodes ("n<i>", plus the designated
/// atoms "a" and "b") and `edges` edges, encoded as length-2 paths in `rel`.
struct GraphWorkload {
  size_t nodes = 8;
  size_t edges = 16;
  uint64_t seed = 1;
  std::string rel = "R";
};
struct Graph {
  size_t nodes = 0;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
};
Graph RandomGraph(const GraphWorkload& w);
Result<Instance> GraphToInstance(Universe& u, const Graph& g,
                                 const std::string& rel);

/// Random event logs over activity atoms, with occurrences of "co" and
/// "rp" sprinkled in (for the process-mining query).
struct EventLogWorkload {
  size_t count = 10;
  size_t len = 12;
  size_t activities = 4;
  uint64_t seed = 1;
  std::string rel = "R";
};
Result<Instance> RandomEventLogs(Universe& u, const EventLogWorkload& w);

}  // namespace seqdl

#endif  // SEQDL_WORKLOAD_GENERATORS_H_
