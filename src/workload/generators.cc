#include "src/workload/generators.h"

namespace seqdl {

std::string LetterName(size_t letter) {
  return std::string(1, static_cast<char>('a' + letter));
}

Result<Instance> RandomStrings(Universe& u, const StringWorkload& w) {
  if (w.alphabet == 0 || w.alphabet > 26) {
    return Status::InvalidArgument("alphabet size must be in [1, 26]");
  }
  std::mt19937_64 rng(w.seed);
  std::uniform_int_distribution<size_t> len_dist(w.min_len, w.max_len);
  std::uniform_int_distribution<size_t> letter_dist(0, w.alphabet - 1);
  SEQDL_ASSIGN_OR_RETURN(RelId rel, u.InternRel(w.rel, 1));
  Instance out;
  for (size_t i = 0; i < w.count; ++i) {
    size_t len = len_dist(rng);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s += static_cast<char>('a' + letter_dist(rng));
    }
    out.Add(rel, {u.PathOfChars(s)});
  }
  return out;
}

bool Nfa::Accepts(const std::vector<uint32_t>& word) const {
  std::vector<bool> current = initial;
  for (uint32_t letter : word) {
    if (letter >= alphabet) return false;  // letter outside the alphabet
    std::vector<bool> next(num_states, false);
    for (size_t q = 0; q < num_states; ++q) {
      if (!current[q]) continue;
      for (uint32_t q2 : delta[q][letter]) next[q2] = true;
    }
    current = std::move(next);
  }
  for (size_t q = 0; q < num_states; ++q) {
    if (current[q] && accepting[q]) return true;
  }
  return false;
}

Nfa RandomNfa(const NfaWorkload& w) {
  std::mt19937_64 rng(w.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Nfa nfa;
  nfa.num_states = w.num_states;
  nfa.alphabet = w.alphabet;
  nfa.initial.assign(w.num_states, false);
  nfa.accepting.assign(w.num_states, false);
  nfa.delta.assign(w.num_states,
                   std::vector<std::vector<uint32_t>>(w.alphabet));
  nfa.initial[0] = true;
  for (size_t q = 0; q < w.num_states; ++q) {
    if (coin(rng) < 0.4) nfa.accepting[q] = true;
    for (size_t l = 0; l < w.alphabet; ++l) {
      for (size_t q2 = 0; q2 < w.num_states; ++q2) {
        if (coin(rng) < w.density) {
          nfa.delta[q][l].push_back(static_cast<uint32_t>(q2));
        }
      }
    }
  }
  // Guarantee at least one accepting state so the workload is nontrivial.
  if (w.num_states > 0) nfa.accepting[w.num_states - 1] = true;
  return nfa;
}

Result<Instance> NfaToInstance(Universe& u, const Nfa& nfa) {
  SEQDL_ASSIGN_OR_RETURN(RelId n_rel, u.InternRel("N", 1));
  SEQDL_ASSIGN_OR_RETURN(RelId d_rel, u.InternRel("D", 3));
  SEQDL_ASSIGN_OR_RETURN(RelId f_rel, u.InternRel("F", 1));
  Instance out;
  auto state = [&u](size_t q) {
    return Value::Atom(u.InternAtom("q" + std::to_string(q)));
  };
  for (size_t q = 0; q < nfa.num_states; ++q) {
    if (nfa.initial[q]) out.Add(n_rel, {u.SingletonPath(state(q))});
    if (nfa.accepting[q]) out.Add(f_rel, {u.SingletonPath(state(q))});
    for (size_t l = 0; l < nfa.alphabet; ++l) {
      Value letter = Value::Atom(u.InternAtom(LetterName(l)));
      for (uint32_t q2 : nfa.delta[q][l]) {
        out.Add(d_rel, {u.SingletonPath(state(q)), u.SingletonPath(letter),
                        u.SingletonPath(state(q2))});
      }
    }
  }
  return out;
}

Graph RandomGraph(const GraphWorkload& w) {
  std::mt19937_64 rng(w.seed);
  std::uniform_int_distribution<uint32_t> node(
      0, static_cast<uint32_t>(w.nodes - 1));
  Graph g;
  g.nodes = w.nodes;
  for (size_t i = 0; i < w.edges; ++i) {
    g.edges.emplace_back(node(rng), node(rng));
  }
  return g;
}

Result<Instance> GraphToInstance(Universe& u, const Graph& g,
                                 const std::string& rel) {
  SEQDL_ASSIGN_OR_RETURN(RelId r, u.InternRel(rel, 1));
  Instance out;
  auto name = [&u, &g](uint32_t n) {
    // Nodes 0 and 1 are the designated endpoints "a" and "b" used by the
    // reachability query of Section 5.1.1.
    if (n == 0) return Value::Atom(u.InternAtom("a"));
    if (n == 1 && g.nodes > 1) return Value::Atom(u.InternAtom("b"));
    return Value::Atom(u.InternAtom("n" + std::to_string(n)));
  };
  for (const auto& [from, to] : g.edges) {
    Value vs[2] = {name(from), name(to)};
    out.Add(r, {u.InternPath(vs)});
  }
  return out;
}

Result<Instance> RandomEventLogs(Universe& u, const EventLogWorkload& w) {
  std::mt19937_64 rng(w.seed);
  std::uniform_int_distribution<size_t> act(0, w.activities + 1);
  SEQDL_ASSIGN_OR_RETURN(RelId rel, u.InternRel(w.rel, 1));
  Instance out;
  for (size_t i = 0; i < w.count; ++i) {
    std::vector<Value> events;
    for (size_t j = 0; j < w.len; ++j) {
      size_t a = act(rng);
      std::string name;
      if (a == w.activities) {
        name = "co";
      } else if (a == w.activities + 1) {
        name = "rp";
      } else {
        name = "act" + std::to_string(a);
      }
      events.push_back(Value::Atom(u.InternAtom(name)));
    }
    out.Add(rel, {u.InternPath(events)});
  }
  return out;
}

}  // namespace seqdl
