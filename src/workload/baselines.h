// Direct C++ baseline implementations of the paper's example queries, used
// for differential testing of the engine and as the non-Datalog comparison
// point in benchmarks.
#ifndef SEQDL_WORKLOAD_BASELINES_H_
#define SEQDL_WORKLOAD_BASELINES_H_

#include <set>
#include <string>
#include <vector>

#include "src/workload/generators.h"

namespace seqdl {

/// Example 3.1: does the string consist exclusively of 'a's?
bool OnlyAs(const std::string& s);

/// Example 4.3: reversal.
std::string ReverseString(const std::string& s);

/// Theorem 5.3: the squaring query on character strings — for input a^n
/// returns a^(n^2); any other string has no output.
std::vector<std::string> SquaringOutputs(const std::set<std::string>& input);

/// Example 2.2: the number of distinct marked occurrences (u, s, v) with
/// u·s·v in `haystacks` and s in `needles`; the query is true iff >= 3.
size_t CountMarkedOccurrences(const std::set<std::string>& haystacks,
                              const std::set<std::string>& needles);

/// Section 5.1.1: is `to` reachable from `from` (nonempty path)?
bool Reachable(const Graph& g, uint32_t from, uint32_t to);

/// Example 4.6: can s be written as a1..an bn..b1 with ai != bi for all i?
bool IsMarkedPair(const std::string& s);

/// Process mining: is every occurrence of "co" in `events` eventually
/// followed by an "rp"?
bool EveryCoFollowedByRp(const std::vector<std::string>& events);

}  // namespace seqdl

#endif  // SEQDL_WORKLOAD_BASELINES_H_
